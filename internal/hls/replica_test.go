package hls

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"periscope/internal/avc"
	"periscope/internal/media"
)

// fakeSource is an in-process origin for replica tests: it counts fetches
// and can hold segment fills open to force request coalescing.
type fakeSource struct {
	mu       sync.Mutex
	playlist []byte
	segs     map[int][]byte
	// segErrs returns the given error for a segment until cleared;
	// segFail fails the next N fetches of a segment, then serves it.
	segErrs  map[int]error
	segFail  map[int]int
	perSeq   map[int]int64

	playlistFetches atomic.Int64
	segmentFetches  atomic.Int64
	// gate, when non-nil, blocks segment fetches until closed.
	gate chan struct{}
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		segs:    map[int][]byte{},
		segErrs: map[int]error{},
		segFail: map[int]int{},
		perSeq:  map[int]int64{},
	}
}

func (s *fakeSource) setSegErr(seq int, err error) {
	s.mu.Lock()
	s.segErrs[seq] = err
	s.mu.Unlock()
}

// failNext makes the next n fetches of seq fail with err, after which the
// stored segment (if any) is served — a transient upstream fault.
func (s *fakeSource) failNext(seq, n int, err error) {
	s.mu.Lock()
	s.segFail[seq] = n
	s.segErrs[seq] = err
	s.mu.Unlock()
}

func (s *fakeSource) fetchesFor(seq int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perSeq[seq]
}

func (s *fakeSource) setPlaylist(pl MediaPlaylist) {
	s.mu.Lock()
	s.playlist = pl.Marshal()
	s.mu.Unlock()
}

func (s *fakeSource) setSegment(seq int, data []byte) {
	s.mu.Lock()
	s.segs[seq] = data
	s.mu.Unlock()
}

func (s *fakeSource) FetchPlaylist(ctx context.Context) ([]byte, error) {
	s.playlistFetches.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.playlist == nil {
		return nil, &UpstreamError{Status: http.StatusNotFound}
	}
	return append([]byte(nil), s.playlist...), nil
}

func (s *fakeSource) FetchSegment(ctx context.Context, seq int) ([]byte, error) {
	s.segmentFetches.Add(1)
	s.mu.Lock()
	s.perSeq[seq]++
	gate := s.gate
	data, ok := s.segs[seq]
	segErr := s.segErrs[seq]
	if segErr != nil {
		if n, transient := s.segFail[seq]; transient {
			if n <= 0 {
				segErr = nil
			} else {
				s.segFail[seq] = n - 1
			}
		}
	}
	s.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if segErr != nil {
		return nil, segErr
	}
	if !ok {
		return nil, &UpstreamError{Status: http.StatusNotFound}
	}
	return data, nil
}

// jobQueue is a deterministic background executor: jobs accumulate until
// the test runs them explicitly.
type jobQueue struct {
	mu   sync.Mutex
	jobs []func()
}

func (q *jobQueue) enqueue(job func()) bool {
	q.mu.Lock()
	q.jobs = append(q.jobs, job)
	q.mu.Unlock()
	return true
}

func (q *jobQueue) runAll() int {
	q.mu.Lock()
	jobs := q.jobs
	q.jobs = nil
	q.mu.Unlock()
	for _, j := range jobs {
		j()
	}
	return len(jobs)
}

func (q *jobQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

func (q *jobQueue) clear() {
	q.mu.Lock()
	q.jobs = nil
	q.mu.Unlock()
}

func livePlaylist(seqs ...int) MediaPlaylist {
	pl := MediaPlaylist{TargetDuration: 4}
	if len(seqs) > 0 {
		pl.MediaSequence = seqs[0]
	}
	for _, s := range seqs {
		pl.Segments = append(pl.Segments, Segment{URI: SegmentName(s), Duration: 3.6, Sequence: s})
	}
	return pl
}

func TestReplicaSingleFlightSegmentFill(t *testing.T) {
	src := newFakeSource()
	src.setSegment(0, bytes.Repeat([]byte{0x47}, 188))
	gate := make(chan struct{})
	src.gate = gate

	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{Source: src, Window: 4, Enqueue: q.enqueue})

	const viewers = 100
	var wg sync.WaitGroup
	errs := make([]error, viewers)
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := rep.Segment(context.Background(), 0)
			if err == nil && len(data) != 188 {
				err = fmt.Errorf("got %d bytes", len(data))
			}
			errs[i] = err
		}(i)
	}
	// Wait until the one origin fill is in flight and the rest have had a
	// chance to pile onto it, then release.
	waitUntil(t, func() bool { return src.segmentFetches.Load() == 1 })
	waitUntil(t, func() bool { return rep.Stats().SingleFlightHits >= viewers-1 })
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("viewer %d: %v", i, err)
		}
	}
	if got := src.segmentFetches.Load(); got != 1 {
		t.Fatalf("origin saw %d segment fetches for %d viewers, want 1", got, viewers)
	}
	st := rep.Stats()
	if st.Fills != 1 || st.SingleFlightHits != viewers-1 {
		t.Errorf("stats = %+v, want 1 fill and %d single-flight hits", st, viewers-1)
	}
	// Subsequent requests are cache hits: still one origin fetch.
	if _, err := rep.Segment(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := src.segmentFetches.Load(); got != 1 {
		t.Errorf("cache hit still reached origin (%d fetches)", got)
	}
}

// TestFillRetrySurvivesTransientError pins the retry-in-flight bugfix: a
// demand fill whose first attempt hits a transient upstream fault used to
// publish the error to every coalesced single-flight waiter; now the
// retry budget lives inside the flight and the waiters only ever see the
// final outcome.
func TestFillRetrySurvivesTransientError(t *testing.T) {
	src := newFakeSource()
	src.setSegment(0, bytes.Repeat([]byte{0x47}, 188))
	// First two attempts fail with a retryable 502, third succeeds.
	src.failNext(0, 2, &UpstreamError{Status: http.StatusBadGateway})

	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{
		Source:       src,
		Window:       4,
		Enqueue:      q.enqueue,
		RetryBackoff: time.Millisecond,
	})

	const viewers = 8
	var wg sync.WaitGroup
	errs := make([]error, viewers)
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := rep.Segment(context.Background(), 0)
			if err == nil && len(data) != 188 {
				err = fmt.Errorf("got %d bytes", len(data))
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("viewer %d saw the transient error: %v", i, err)
		}
	}
	if got := src.fetchesFor(0); got != 3 {
		t.Errorf("origin attempts = %d, want 3 (2 failures + 1 success)", got)
	}
	st := rep.Stats()
	if st.Fills != 1 {
		t.Errorf("Fills = %d, want 1 — retries must not count as fills", st.Fills)
	}
	if st.FillRetries != 2 {
		t.Errorf("FillRetries = %d, want 2", st.FillRetries)
	}
	if st.FillErrors != 0 {
		t.Errorf("FillErrors = %d, want 0 for a fill that recovered", st.FillErrors)
	}
}

// Terminal upstream answers (404: the origin is alive and says no) must
// not burn retry attempts.
func TestFillRetrySkipsTerminalErrors(t *testing.T) {
	src := newFakeSource()
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{Source: src, Window: 4, Enqueue: q.enqueue, RetryBackoff: time.Millisecond})
	if _, err := rep.Segment(context.Background(), 7); err == nil {
		t.Fatal("want 404 error")
	}
	if got := src.fetchesFor(7); got != 1 {
		t.Errorf("origin attempts = %d, want 1 — 404 is terminal", got)
	}
}

func TestNegativeCacheShieldsUpstream(t *testing.T) {
	src := newFakeSource()
	clock := time.Unix(5000, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{
		Source:       src,
		Window:       4,
		Enqueue:      q.enqueue,
		FillAttempts: 1,
		NegativeTTL:  time.Second,
		Now:          now,
	})

	// First miss pays one upstream attempt and fails.
	if _, err := rep.Segment(context.Background(), 3); err == nil {
		t.Fatal("want 404")
	}
	if got := src.fetchesFor(3); got != 1 {
		t.Fatalf("attempts = %d", got)
	}
	// Requests inside the TTL are answered from the negative cache.
	for i := 0; i < 5; i++ {
		if _, err := rep.Segment(context.Background(), 3); err == nil {
			t.Fatal("negative cache returned success")
		}
	}
	if got := src.fetchesFor(3); got != 1 {
		t.Errorf("negative cache leaked %d extra upstream attempts", got-1)
	}
	if st := rep.Stats(); st.NegativeHits != 5 {
		t.Errorf("NegativeHits = %d, want 5", st.NegativeHits)
	}
	// Past the TTL the segment is probed again — and can now succeed.
	src.setSegment(3, bytes.Repeat([]byte{0x47}, 188))
	clockMu.Lock()
	clock = clock.Add(2 * time.Second)
	clockMu.Unlock()
	data, err := rep.Segment(context.Background(), 3)
	if err != nil || len(data) != 188 {
		t.Fatalf("post-TTL fill: %d bytes, err %v", len(data), err)
	}
	if got := src.fetchesFor(3); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestReplicaFillSurvivesInitiatorDisconnect pins the detached-fill
// property: the viewer whose request started a single-flight fill
// disconnecting must not fail the fetch for the coalesced waiters.
func TestReplicaFillSurvivesInitiatorDisconnect(t *testing.T) {
	src := newFakeSource()
	src.setSegment(0, bytes.Repeat([]byte{0x47}, 188))
	gate := make(chan struct{})
	src.gate = gate

	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{Source: src, Window: 4, Enqueue: q.enqueue})

	initiatorCtx, cancelInitiator := context.WithCancel(context.Background())
	initiatorErr := make(chan error, 1)
	go func() {
		_, err := rep.Segment(initiatorCtx, 0)
		initiatorErr <- err
	}()
	waitUntil(t, func() bool { return src.segmentFetches.Load() == 1 })

	// A second viewer coalesces, then the initiator disconnects.
	waiterData := make(chan []byte, 1)
	go func() {
		data, err := rep.Segment(context.Background(), 0)
		if err != nil {
			t.Errorf("coalesced waiter failed: %v", err)
		}
		waiterData <- data
	}()
	waitUntil(t, func() bool { return rep.Stats().SingleFlightHits == 1 })
	cancelInitiator()
	if err := <-initiatorErr; err != context.Canceled {
		t.Fatalf("initiator error = %v, want context.Canceled", err)
	}

	close(gate)
	if data := <-waiterData; len(data) != 188 {
		t.Fatalf("waiter got %d bytes", len(data))
	}
	st := rep.Stats()
	if st.FillErrors != 0 {
		t.Errorf("fill errors = %d after initiator disconnect, want 0", st.FillErrors)
	}
	if src.segmentFetches.Load() != 1 {
		t.Errorf("origin fetches = %d, want 1", src.segmentFetches.Load())
	}
}

func TestReplicaStaleWhileRevalidatePlaylist(t *testing.T) {
	src := newFakeSource()
	src.setPlaylist(livePlaylist(0))

	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{
		Source:         src,
		Window:         4,
		TargetDuration: 4 * time.Second,
		PlaylistTTL:    2 * time.Second,
		Enqueue:        q.enqueue,
		Now:            clock,
	})

	// Cold cache: blocking fill.
	raw, _, err := rep.Playlist(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if src.playlistFetches.Load() != 1 {
		t.Fatalf("cold fetch count = %d", src.playlistFetches.Load())
	}
	// The cold fill's prefetch enqueues asynchronously; wait for it.
	waitUntil(t, func() bool { return q.size() == 1 })

	// Within TTL: cached, no origin traffic, no refresh scheduled.
	now = now.Add(time.Second)
	if _, _, err := rep.Playlist(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := q.runAll(); n != 1 { // only the segment prefetch from the cold fill
		t.Fatalf("within-TTL serve queued %d jobs, want 1 (prefetch)", n)
	}
	if src.playlistFetches.Load() != 1 {
		t.Errorf("within-TTL serve hit origin")
	}

	// Origin advances; edge is past TTL: the stale copy is served
	// immediately and a revalidation is queued.
	src.setPlaylist(livePlaylist(1, 2))
	now = now.Add(5 * time.Second)
	raw2, _, err := rep.Playlist(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("stale serve returned new content before revalidation")
	}
	st := rep.Stats()
	if st.StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1", st.StaleServes)
	}
	if st.PlaylistAge != 6*time.Second {
		t.Errorf("PlaylistAge = %v, want 6s", st.PlaylistAge)
	}

	// A second stale serve while the refresh is pending must not queue
	// another one.
	if _, _, err := rep.Playlist(context.Background()); err != nil {
		t.Fatal(err)
	}
	q.runAll() // run the (single) revalidation + its prefetches
	if src.playlistFetches.Load() != 2 {
		t.Fatalf("pending revalidation deduped wrong: %d origin fetches", src.playlistFetches.Load())
	}

	// After revalidation: fresh content, age reset.
	raw3, pl3, err := rep.Playlist(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw2, raw3) || len(pl3.Segments) != 2 {
		t.Fatalf("revalidated playlist not installed: %s", raw3)
	}
	if age := rep.Stats().PlaylistAge; age != 0 {
		t.Errorf("PlaylistAge after refresh = %v, want 0", age)
	}
}

func TestReplicaFinalPlaylistStopsRevalidating(t *testing.T) {
	src := newFakeSource()
	ended := livePlaylist(3, 4)
	ended.Ended = true
	src.setPlaylist(ended)

	now := time.Unix(1000, 0)
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{
		Source:      src,
		PlaylistTTL: time.Second,
		Enqueue:     q.enqueue,
		Now:         func() time.Time { return now },
	})
	if _, pl, err := rep.Playlist(context.Background()); err != nil || !pl.Ended {
		t.Fatalf("pl=%+v err=%v", pl, err)
	}
	// Far past the TTL: a final playlist serves from cache forever.
	now = now.Add(time.Hour)
	// Wait for the cold fill's async prefetches (2 listed segments), then
	// discard them; only refreshes matter here.
	waitUntil(t, func() bool { return q.size() == 2 })
	q.clear()
	if _, _, err := rep.Playlist(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := q.runAll(); n != 0 {
		t.Errorf("final playlist scheduled %d background jobs", n)
	}
	st := rep.Stats()
	if st.StaleServes != 0 || !st.Final || st.PlaylistAge != 0 {
		t.Errorf("stats = %+v, want final with no stale serves", st)
	}
	if src.playlistFetches.Load() != 1 {
		t.Errorf("final playlist refetched (%d)", src.playlistFetches.Load())
	}
}

// TestReplicaEvictionParity pins the edge cache window to the origin
// segmenter's fetch horizon: window+2 segments, older ones evicted.
func TestReplicaEvictionParity(t *testing.T) {
	origin := NewSegmenter(DefaultSegmentTarget, 4)
	src := newFakeSource()
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{Source: src, Window: origin.WindowSize(), Enqueue: q.enqueue})

	const total = 20
	for seq := 0; seq < total; seq++ {
		src.setSegment(seq, []byte{byte(seq)})
		if _, err := rep.Segment(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
	}
	st := rep.Stats()
	if st.CachedSegments != origin.MaxKeep() {
		t.Fatalf("edge caches %d segments, origin horizon is %d", st.CachedSegments, origin.MaxKeep())
	}
	if want := int64(total - origin.MaxKeep()); st.Evictions != want {
		t.Errorf("evictions = %d, want %d", st.Evictions, want)
	}
	// An evicted sequence re-fills from origin rather than resurrecting.
	before := src.segmentFetches.Load()
	if _, err := rep.Segment(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if src.segmentFetches.Load() != before+1 {
		t.Errorf("evicted segment did not re-fill from origin")
	}
}

// TestReplicaPrefetchWarmsListedSegments verifies that a playlist fill
// schedules background fills for the segments it lists.
func TestReplicaPrefetchWarmsListedSegments(t *testing.T) {
	src := newFakeSource()
	src.setPlaylist(livePlaylist(5, 6, 7))
	for seq := 5; seq <= 7; seq++ {
		src.setSegment(seq, []byte{byte(seq)})
	}
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{Source: src, Enqueue: q.enqueue})
	if _, _, err := rep.Playlist(context.Background()); err != nil {
		t.Fatal(err)
	}
	q.runAll()
	if st := rep.Stats(); st.CachedSegments != 3 || st.Fills != 3 {
		t.Fatalf("prefetch stats = %+v, want 3 cached/3 fills", st)
	}
	// Demand for a prefetched segment is a pure cache hit.
	before := src.segmentFetches.Load()
	if _, err := rep.Segment(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	if src.segmentFetches.Load() != before {
		t.Errorf("prefetched segment refetched on demand")
	}
}

func TestReplicaServeHTTPOverOriginHTTP(t *testing.T) {
	seg := NewSegmenter(500*time.Millisecond, 4)
	feedSegmenterFor(t, seg, 4*time.Second)
	seg.Finish(time.Unix(3000, 0))
	origin := httptest.NewServer(&Origin{Seg: seg})
	defer origin.Close()

	w := NewFillWorker(64, 4)
	defer w.Stop()
	rep := NewReplica(ReplicaConfig{
		Source:  &FillClient{BaseURL: origin.URL},
		Window:  seg.WindowSize(),
		Enqueue: w.Enqueue,
	})
	edge := httptest.NewServer(rep)
	defer edge.Close()

	resp, err := http.Get(edge.URL + "/playlist.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := readPlaylist(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Ended {
		t.Fatal("edge playlist for finished broadcast lacks ENDLIST")
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "max-age=86400, immutable" {
		t.Errorf("final playlist Cache-Control = %q", cc)
	}
	for _, s := range pl.Segments {
		r2, err := http.Get(edge.URL + "/" + s.URI)
		if err != nil {
			t.Fatal(err)
		}
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("segment %s status %d", s.URI, r2.StatusCode)
		}
		r2.Body.Close()
	}
	// Expired/unknown sequences surface the origin's 404, not a 502.
	r3, err := http.Get(edge.URL + "/" + SegmentName(9999))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Errorf("missing segment status = %d, want 404", r3.StatusCode)
	}
}

func TestFillWorkerDropsWhenSaturated(t *testing.T) {
	w := NewFillWorker(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if !w.Enqueue(func() { close(started); <-block }) {
		t.Fatal("first job rejected")
	}
	<-started
	if !w.Enqueue(func() {}) { // fills the queue slot
		t.Fatal("queued job rejected")
	}
	if w.Enqueue(func() {}) {
		t.Error("saturated queue accepted a job")
	}
	if w.Dropped.Load() != 1 {
		t.Errorf("Dropped = %d, want 1", w.Dropped.Load())
	}
	close(block)
	w.Stop()
	if w.Enqueue(func() {}) {
		t.Error("stopped worker accepted a job")
	}
}

// feedSegmenterFor pushes a synthetic stream into an existing segmenter
// (like feedSegmenter, but without Finish, so callers control the end).
func feedSegmenterFor(t *testing.T, seg *Segmenter, streamDur time.Duration) {
	t.Helper()
	cfg := media.DefaultEncoderConfig()
	cfg.DropProb = 0
	enc := media.NewEncoder(cfg, time.Unix(1000, 0))
	interval := enc.FrameInterval()
	now := time.Unix(2000, 0)
	for pts := time.Duration(0); pts < streamDur; pts += interval {
		f := enc.NextFrame()
		seg.WriteVideo(now.Add(f.PTS), f.PTS, f.DTS, f.Keyframe, avc.MarshalAnnexB(f.NALs))
	}
}

func readPlaylist(resp *http.Response) (MediaPlaylist, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return MediaPlaylist{}, err
	}
	return ParseMediaPlaylist(buf.Bytes())
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
