package hls

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Master playlists. The paper notes HLS is "an adaptive streaming protocol
// capable for quality switching on the fly" and speculates that the RTMP
// stream is "possibly transcoded to multiple qualities" — yet §5.2 finds
// no evidence of bitrate adaptation in the captures (a single variant).
// This file provides the master-playlist machinery so both configurations
// can be expressed: the study's single-variant service and the
// multi-variant extension.

// Variant is one entry of a master playlist.
type Variant struct {
	URI        string
	Bandwidth  int // peak bits per second
	Resolution string
	Codecs     string
}

// MasterPlaylist is an HLS master (multivariant) playlist.
type MasterPlaylist struct {
	Version  int
	Variants []Variant
}

// Marshal renders the master playlist in M3U8 format.
func (m MasterPlaylist) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "#EXTM3U\n")
	version := m.Version
	if version == 0 {
		version = 3
	}
	fmt.Fprintf(&b, "#EXT-X-VERSION:%d\n", version)
	for _, v := range m.Variants {
		fmt.Fprintf(&b, "#EXT-X-STREAM-INF:BANDWIDTH=%d", v.Bandwidth)
		if v.Resolution != "" {
			fmt.Fprintf(&b, ",RESOLUTION=%s", v.Resolution)
		}
		if v.Codecs != "" {
			fmt.Fprintf(&b, ",CODECS=%q", v.Codecs)
		}
		fmt.Fprintf(&b, "\n%s\n", v.URI)
	}
	return b.Bytes()
}

// ParseMasterPlaylist decodes a master playlist.
func ParseMasterPlaylist(data []byte) (MasterPlaylist, error) {
	var m MasterPlaylist
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return m, errors.New("hls: missing #EXTM3U header")
	}
	var pending *Variant
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#EXT-X-VERSION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-VERSION:"))
			if err != nil {
				return m, fmt.Errorf("hls: bad version: %w", err)
			}
			m.Version = v
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			attrs := parseAttrList(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:"))
			v := Variant{
				Resolution: attrs["RESOLUTION"],
				Codecs:     attrs["CODECS"],
			}
			if bw, err := strconv.Atoi(attrs["BANDWIDTH"]); err == nil {
				v.Bandwidth = bw
			}
			pending = &v
		case strings.HasPrefix(line, "#"):
			continue
		default:
			if pending == nil {
				return m, fmt.Errorf("hls: variant URI %q without STREAM-INF", line)
			}
			pending.URI = line
			m.Variants = append(m.Variants, *pending)
			pending = nil
		}
	}
	return m, sc.Err()
}

// parseAttrList splits an HLS attribute list, honouring quoted values.
func parseAttrList(s string) map[string]string {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		var val string
		if strings.HasPrefix(s, `"`) {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				break
			}
			val = s[1 : 1+end]
			s = s[2+end:]
			s = strings.TrimPrefix(s, ",")
		} else {
			end := strings.IndexByte(s, ',')
			if end < 0 {
				val, s = s, ""
			} else {
				val, s = s[:end], s[end+1:]
			}
		}
		out[key] = val
	}
	return out
}

// PickVariant selects the highest-bandwidth variant sustainable at the
// measured throughput with the given safety factor (e.g. 0.8), falling
// back to the lowest variant. This is the rate-adaptation policy the
// study looked for and did not observe in Periscope; the simulator's
// single-variant deployment reproduces the observed behaviour, while this
// helper enables the counterfactual.
func PickVariant(m MasterPlaylist, throughputBps float64, safety float64) (Variant, error) {
	if len(m.Variants) == 0 {
		return Variant{}, errors.New("hls: empty master playlist")
	}
	if safety <= 0 {
		safety = 0.8
	}
	best := -1
	lowest := 0
	for i, v := range m.Variants {
		if v.Bandwidth < m.Variants[lowest].Bandwidth {
			lowest = i
		}
		if float64(v.Bandwidth) <= throughputBps*safety {
			if best == -1 || v.Bandwidth > m.Variants[best].Bandwidth {
				best = i
			}
		}
	}
	if best == -1 {
		best = lowest
	}
	return m.Variants[best], nil
}
