package hls

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, time.Second, clk.now)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Observe(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	// A success resets the consecutive count.
	b.Observe(false)
	for i := 0; i < 2; i++ {
		b.Observe(true)
	}
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	// The third consecutive failure trips it open.
	b.Observe(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
	// Open: rejects until the cooldown elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.Rejects() != 1 {
		t.Fatalf("Rejects = %d, want 1", b.Rejects())
	}
	// Cooldown elapsed: exactly one half-open probe gets through.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while the probe was in flight")
	}
	// Probe succeeds: breaker closes.
	b.Observe(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request after recovery")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(2, time.Second, clk.now)
	b.Observe(true)
	b.Observe(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Observe(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2", b.Trips())
	}
	// The failed probe restarts the cooldown.
	if b.Allow() {
		t.Fatal("request admitted right after a failed probe")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no second probe after another cooldown")
	}
}

func TestBreakerSourceClassification(t *testing.T) {
	src := newFakeSource()
	b := NewBreaker(2, time.Minute, nil)
	bs := &BreakerSource{Source: src, Breaker: b}
	ctx := context.Background()

	// 404s are a healthy origin answering — never a breaker failure.
	src.setSegErr(1, &UpstreamError{Status: http.StatusNotFound})
	for i := 0; i < 5; i++ {
		if _, err := bs.FetchSegment(ctx, 1); err == nil {
			t.Fatal("want 404 error")
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("404s tripped the breaker (state %v)", b.State())
	}

	// 5xx and transport errors trip it.
	src.setSegErr(2, &UpstreamError{Status: http.StatusBadGateway})
	if _, err := bs.FetchSegment(ctx, 2); err == nil {
		t.Fatal("want 502 error")
	}
	src.setSegErr(3, errors.New("connection refused"))
	if _, err := bs.FetchSegment(ctx, 3); err == nil {
		t.Fatal("want transport error")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after 2 hard failures", b.State())
	}

	// Open breaker fails fast with ErrBreakerOpen.
	if _, err := bs.FetchSegment(ctx, 4); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if got := src.fetchesFor(4); got != 0 {
		t.Fatalf("open breaker still hit the upstream %d times", got)
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	src := newFakeSource()
	b := NewBreaker(1, time.Minute, nil)
	bs := &BreakerSource{Source: src, Breaker: b}
	src.setSegErr(1, context.Canceled)
	if _, err := bs.FetchSegment(context.Background(), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatal("caller cancellation tripped the breaker")
	}
}

func TestBreakerClosedPathAllocs(t *testing.T) {
	b := NewBreaker(5, time.Second, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if !b.Allow() {
			t.Fatal("closed breaker rejected")
		}
		b.Observe(false)
	})
	if allocs != 0 {
		t.Errorf("closed-state Allow+Observe allocates %v objects per fill, want 0", allocs)
	}
}

// BenchmarkBreakerOverhead measures the closed-state hot path a healthy
// fill pays: one Allow plus one Observe.
func BenchmarkBreakerOverhead(b *testing.B) {
	br := NewBreaker(5, time.Second, nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !br.Allow() {
				b.Fatal("closed breaker rejected")
			}
			br.Observe(false)
		}
	})
}
