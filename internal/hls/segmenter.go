package hls

import (
	"fmt"
	"math"
	"sync"
	"time"

	"periscope/internal/mpegts"
)

// DefaultSegmentTarget is the segment duration the study most frequently
// observed (3.6 s in 60% of cases).
const DefaultSegmentTarget = 3600 * time.Millisecond

// DefaultWindowSize is the number of segments kept in the live playlist.
const DefaultWindowSize = 4

// StoredSegment is a finished segment held in the live window.
type StoredSegment struct {
	Sequence int
	Duration time.Duration
	Data     []byte
	// Completed is the wall-clock time the segment became available; HLS
	// delivery latency starts from here.
	Completed time.Time
}

// Segmenter packages a live elementary stream into MPEG-TS segments, cut
// at keyframe boundaries once the target duration has accumulated. It
// maintains a sliding window playlist like a live HLS origin.
type Segmenter struct {
	mu sync.Mutex

	target     time.Duration
	windowSize int

	mux       *mpegts.Muxer
	curStart  time.Duration // PTS of first frame in current segment
	curEnd    time.Duration
	haveFrame bool

	seq     int
	window  []StoredSegment
	ended   bool
	maxKeep int
	all     map[int]StoredSegment // segments still fetchable (window + grace)
}

// NewSegmenter creates a live segmenter with the given target segment
// duration and playlist window size.
func NewSegmenter(target time.Duration, windowSize int) *Segmenter {
	if target <= 0 {
		target = DefaultSegmentTarget
	}
	if windowSize <= 0 {
		windowSize = DefaultWindowSize
	}
	return &Segmenter{
		target:     target,
		windowSize: windowSize,
		mux:        mpegts.NewMuxer(),
		all:        map[int]StoredSegment{},
		maxKeep:    windowSize + 2,
	}
}

// WriteVideo adds one video access unit (Annex B). now is the wall-clock
// time of arrival at the packager, used to stamp segment availability.
func (s *Segmenter) WriteVideo(now time.Time, pts, dts time.Duration, keyframe bool, annexB []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	// Cut before a keyframe once the target is reached.
	if s.haveFrame && keyframe && s.curEnd-s.curStart >= s.target {
		s.cutLocked(now)
	}
	if !s.haveFrame {
		s.curStart = pts
		s.haveFrame = true
	}
	if pts > s.curEnd {
		s.curEnd = pts
	}
	s.mux.WriteVideo(pts, dts, keyframe, annexB)
}

// WriteAudio adds one audio access unit (ADTS frame).
func (s *Segmenter) WriteAudio(now time.Time, pts time.Duration, adts []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.mux.WriteAudio(pts, adts)
	if pts > s.curEnd {
		s.curEnd = pts
	}
}

// cutLocked finalizes the current segment.
func (s *Segmenter) cutLocked(now time.Time) {
	data := s.mux.Bytes()
	if len(data) == 0 {
		return
	}
	dur := s.curEnd - s.curStart
	if dur <= 0 {
		dur = s.target
	}
	seg := StoredSegment{
		Sequence:  s.seq,
		Duration:  dur,
		Data:      data,
		Completed: now,
	}
	s.seq++
	s.window = append(s.window, seg)
	s.all[seg.Sequence] = seg
	if len(s.window) > s.windowSize {
		s.window = s.window[1:]
	}
	// Expire segments far outside the window.
	for k := range s.all {
		if k < s.seq-s.maxKeep {
			delete(s.all, k)
		}
	}
	s.haveFrame = false
	s.curStart, s.curEnd = 0, 0
}

// Finish flushes the trailing partial segment and marks the playlist ended.
func (s *Segmenter) Finish(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.haveFrame || s.mux.Len() > 0 {
		s.cutLocked(now)
	}
	s.ended = true
}

// Playlist renders the current live playlist.
func (s *Segmenter) Playlist() MediaPlaylist {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := MediaPlaylist{Ended: s.ended}
	var maxDur float64
	for _, seg := range s.window {
		d := seg.Duration.Seconds()
		maxDur = math.Max(maxDur, d)
		p.Segments = append(p.Segments, Segment{
			URI:      SegmentName(seg.Sequence),
			Duration: d,
			Sequence: seg.Sequence,
		})
	}
	p.TargetDuration = int(math.Ceil(maxDur))
	if p.TargetDuration == 0 {
		p.TargetDuration = int(math.Ceil(s.target.Seconds()))
	}
	if len(s.window) > 0 {
		p.MediaSequence = s.window[0].Sequence
	} else {
		p.MediaSequence = s.seq
	}
	return p
}

// Segment returns a stored segment by sequence number.
func (s *Segmenter) Segment(seq int) (StoredSegment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.all[seq]
	return seg, ok
}

// SegmentCount reports how many segments have been produced in total.
func (s *Segmenter) SegmentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Ended reports whether Finish has been called: the playlist is final and
// no further segments will appear.
func (s *Segmenter) Ended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// WindowSize returns the live playlist window size.
func (s *Segmenter) WindowSize() int { return s.windowSize }

// MaxKeep returns the fetchable-segment horizon (window plus grace):
// segments older than the newest minus MaxKeep are expired. Edge replicas
// size their caches to this so eviction stays in lockstep with the origin.
func (s *Segmenter) MaxKeep() int { return s.maxKeep }

// Target returns the target segment duration.
func (s *Segmenter) Target() time.Duration { return s.target }

// SegmentName formats the canonical URI for a sequence number.
func SegmentName(seq int) string { return fmt.Sprintf("seg%06d.ts", seq) }

// ParseSegmentName recovers the sequence number from a URI.
func ParseSegmentName(uri string) (int, error) {
	var seq int
	if _, err := fmt.Sscanf(uri, "seg%06d.ts", &seq); err != nil {
		return 0, fmt.Errorf("hls: bad segment name %q", uri)
	}
	return seq, nil
}
