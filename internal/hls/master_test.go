package hls

import (
	"testing"
)

func testMaster() MasterPlaylist {
	return MasterPlaylist{
		Variants: []Variant{
			{URI: "low/playlist.m3u8", Bandwidth: 250_000, Resolution: "320x568", Codecs: "avc1.42001f,mp4a.40.2"},
			{URI: "mid/playlist.m3u8", Bandwidth: 500_000, Resolution: "320x568"},
			{URI: "high/playlist.m3u8", Bandwidth: 1_000_000, Resolution: "640x1136"},
		},
	}
}

func TestMasterPlaylistRoundTrip(t *testing.T) {
	m := testMaster()
	got, err := ParseMasterPlaylist(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Variants) != 3 {
		t.Fatalf("variants = %d", len(got.Variants))
	}
	if got.Variants[0].Bandwidth != 250_000 || got.Variants[0].URI != "low/playlist.m3u8" {
		t.Errorf("variant 0 = %+v", got.Variants[0])
	}
	if got.Variants[0].Codecs != "avc1.42001f,mp4a.40.2" {
		t.Errorf("quoted codecs mangled: %q", got.Variants[0].Codecs)
	}
	if got.Variants[2].Resolution != "640x1136" {
		t.Errorf("variant 2 resolution = %q", got.Variants[2].Resolution)
	}
}

func TestMasterPlaylistBadInputs(t *testing.T) {
	if _, err := ParseMasterPlaylist([]byte("junk")); err == nil {
		t.Error("want error for missing header")
	}
	if _, err := ParseMasterPlaylist([]byte("#EXTM3U\norphan.m3u8\n")); err == nil {
		t.Error("want error for URI without STREAM-INF")
	}
}

func TestPickVariant(t *testing.T) {
	m := testMaster()
	cases := []struct {
		throughput float64
		wantBW     int
	}{
		{2_000_000, 1_000_000}, // plenty: highest
		{700_000, 500_000},     // 1M > 0.7M*0.8: mid
		{300_000, 250_000},     // only low fits 240k budget... 250k > 240k: fallback lowest
		{100_000, 250_000},     // nothing fits: lowest
	}
	for _, c := range cases {
		v, err := PickVariant(m, c.throughput, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if v.Bandwidth != c.wantBW {
			t.Errorf("throughput %.0f: picked %d, want %d", c.throughput, v.Bandwidth, c.wantBW)
		}
	}
}

func TestPickVariantEmpty(t *testing.T) {
	if _, err := PickVariant(MasterPlaylist{}, 1e6, 0.8); err == nil {
		t.Error("want error for empty master")
	}
}

func TestAttrList(t *testing.T) {
	attrs := parseAttrList(`BANDWIDTH=800000,CODECS="avc1,mp4a",RESOLUTION=320x568`)
	if attrs["BANDWIDTH"] != "800000" || attrs["CODECS"] != "avc1,mp4a" || attrs["RESOLUTION"] != "320x568" {
		t.Errorf("attrs = %v", attrs)
	}
}
