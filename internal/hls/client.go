package hls

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ClientConfig configures the HLS polling client.
type ClientConfig struct {
	// BaseURL is the directory URL containing playlist.m3u8.
	BaseURL string
	// PollInterval between playlist refreshes; defaults to half the target
	// duration as typical players do.
	PollInterval time.Duration
	// Parallelism is the number of concurrent segment connections. The
	// paper notes HLS "may sometimes use multiple connections to different
	// servers in parallel"; >1 enables that behaviour.
	Parallelism int
	// HTTPClient may carry a bandwidth-shaped transport.
	HTTPClient *http.Client
	// OnSegment is invoked for every downloaded segment, in sequence order.
	OnSegment func(FetchedSegment)
}

// Client downloads a live HLS stream until the context ends or the
// playlist is marked ended.
type Client struct {
	cfg  ClientConfig
	http *http.Client

	mu      sync.Mutex
	fetched map[int]FetchedSegment
	failed  map[int]bool
	next    int
	// Bytes counts total payload bytes downloaded (playlists + segments).
	Bytes int64
	// PlaylistFetches counts playlist polls (each is one HTTP request).
	PlaylistFetches int
}

// NewClient validates cfg and returns a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultSegmentTarget / 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{cfg: cfg, http: hc, fetched: map[int]FetchedSegment{}, failed: map[int]bool{}, next: -1}
}

// Run polls the playlist and fetches segments until ctx is cancelled or
// the stream ends. It returns the number of segments delivered.
func (c *Client) Run(ctx context.Context) (int, error) {
	delivered := 0
	sem := make(chan struct{}, c.cfg.Parallelism)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		pl, err := c.fetchPlaylist(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return delivered, nil
			}
			return delivered, err
		}
		for _, seg := range pl.Segments {
			seg := seg
			c.mu.Lock()
			if c.next == -1 {
				// Live join: start from the newest segment in the window,
				// as live players do to minimise latency.
				c.next = pl.Segments[len(pl.Segments)-1].Sequence
			}
			_, have := c.fetched[seg.Sequence]
			shouldFetch := !have && seg.Sequence >= c.next
			c.mu.Unlock()
			if !shouldFetch {
				continue
			}
			c.mu.Lock()
			c.fetched[seg.Sequence] = FetchedSegment{} // reserve
			c.mu.Unlock()
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				fs, err := c.fetchSegment(ctx, seg)
				c.mu.Lock()
				if err != nil {
					// Expired or unreachable: skip it rather than stalling
					// the delivery pipeline forever.
					delete(c.fetched, seg.Sequence)
					c.failed[seg.Sequence] = true
				} else {
					c.fetched[seg.Sequence] = fs
				}
				c.mu.Unlock()
			}()
		}
		// Deliver contiguous completed segments in order.
		wg.Wait()
		delivered += c.deliverReady()
		if pl.Ended {
			return delivered, nil
		}
		select {
		case <-ctx.Done():
			return delivered, nil
		case <-time.After(c.cfg.PollInterval):
		}
	}
}

func (c *Client) deliverReady() int {
	c.mu.Lock()
	var ready []FetchedSegment
	for {
		if c.failed[c.next] {
			delete(c.failed, c.next)
			c.next++
			continue
		}
		fs, ok := c.fetched[c.next]
		if !ok || fs.Data == nil {
			break
		}
		ready = append(ready, fs)
		delete(c.fetched, c.next)
		c.next++
	}
	c.mu.Unlock()
	sort.Slice(ready, func(i, j int) bool { return ready[i].Sequence < ready[j].Sequence })
	for _, fs := range ready {
		if c.cfg.OnSegment != nil {
			c.cfg.OnSegment(fs)
		}
	}
	return len(ready)
}

func (c *Client) fetchPlaylist(ctx context.Context) (MediaPlaylist, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/playlist.m3u8", nil)
	if err != nil {
		return MediaPlaylist{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return MediaPlaylist{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return MediaPlaylist{}, fmt.Errorf("hls: playlist status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return MediaPlaylist{}, err
	}
	c.mu.Lock()
	c.Bytes += int64(len(data))
	c.PlaylistFetches++
	c.mu.Unlock()
	return ParseMediaPlaylist(data)
}

func (c *Client) fetchSegment(ctx context.Context, seg Segment) (FetchedSegment, error) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/"+seg.URI, nil)
	if err != nil {
		return FetchedSegment{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return FetchedSegment{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return FetchedSegment{}, fmt.Errorf("hls: segment status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return FetchedSegment{}, err
	}
	c.mu.Lock()
	c.Bytes += int64(len(data))
	c.mu.Unlock()
	return FetchedSegment{
		Sequence:   seg.Sequence,
		Duration:   time.Duration(seg.Duration * float64(time.Second)),
		Data:       data,
		FetchStart: start,
		FetchEnd:   time.Now(),
	}, nil
}
