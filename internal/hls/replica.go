package hls

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file models the origin→edge fill path of the two-POP CDN the paper
// observed ("all HLS streams came from two IP addresses"): a POP does not
// hold the broadcast's segmenter, it holds a Replica that pulls playlists
// and segments from the origin tier on demand and in the background.
// Playlist staleness at the edge — the quantity that drives HLS join time
// and stalling in §4/§5 — becomes an explicit, measurable property.

// SegmentSource is the fill protocol a Replica pulls from: the origin's
// live playlist and its segments. FillClient implements it over HTTP;
// tests may supply in-process fakes.
type SegmentSource interface {
	FetchPlaylist(ctx context.Context) ([]byte, error)
	FetchSegment(ctx context.Context, seq int) ([]byte, error)
}

// UpstreamError reports a non-200 origin response, preserving the status
// so the edge can mirror 404s (expired segments) instead of masking them
// as gateway failures.
type UpstreamError struct {
	Status int
}

func (e *UpstreamError) Error() string {
	return fmt.Sprintf("hls: upstream status %d", e.Status)
}

// FillClient fetches origin data over HTTP — the POP-internal fill path.
type FillClient struct {
	// BaseURL is the origin directory holding playlist.m3u8 and segments.
	BaseURL string
	// HTTP may carry a shaped or instrumented transport; defaults to
	// http.DefaultClient.
	HTTP *http.Client
}

func (c *FillClient) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, &UpstreamError{Status: resp.StatusCode}
	}
	return io.ReadAll(resp.Body)
}

// FetchPlaylist implements SegmentSource.
func (c *FillClient) FetchPlaylist(ctx context.Context) ([]byte, error) {
	return c.get(ctx, c.BaseURL+"/playlist.m3u8")
}

// FetchSegment implements SegmentSource.
func (c *FillClient) FetchSegment(ctx context.Context, seq int) ([]byte, error) {
	return c.get(ctx, c.BaseURL+"/"+SegmentName(seq))
}

// FillWorker is a POP's background fill executor: a small pool of
// goroutines draining a bounded job queue. Jobs block on origin HTTP
// fetches, so more than one worker is needed or a single slow broadcast
// would head-of-line-block every other replica's revalidation on the same
// POP. Background work (playlist revalidation, segment prefetch) is
// best-effort — when the queue is full the job is dropped and the demand
// path fills synchronously instead.
type FillWorker struct {
	ch   chan func()
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// Dropped counts jobs rejected because the queue was full or the
	// worker had stopped.
	Dropped atomic.Int64
}

// NewFillWorker starts a pool with the given queue depth and worker count.
func NewFillWorker(depth, workers int) *FillWorker {
	if depth <= 0 {
		depth = 256
	}
	if workers <= 0 {
		workers = 1
	}
	w := &FillWorker{
		ch:   make(chan func(), depth),
		quit: make(chan struct{}),
	}
	w.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go w.run()
	}
	return w
}

func (w *FillWorker) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.quit:
			return
		case job := <-w.ch:
			job()
		}
	}
}

// Enqueue offers a job without blocking; it reports whether the job was
// accepted.
func (w *FillWorker) Enqueue(job func()) bool {
	select {
	case <-w.quit:
		w.Dropped.Add(1)
		return false
	default:
	}
	select {
	case w.ch <- job:
		return true
	default:
		w.Dropped.Add(1)
		return false
	}
}

// Stop terminates the pool; queued jobs are discarded. It is idempotent
// and returns after every worker goroutine has exited.
func (w *FillWorker) Stop() {
	w.once.Do(func() { close(w.quit) })
	w.wg.Wait()
}

// ReplicaConfig tunes one edge replica.
type ReplicaConfig struct {
	// Source is the origin fill path (required).
	Source SegmentSource
	// Window is the origin playlist window size; the replica keeps
	// Window+2 segments (the origin's own fetch horizon) and evicts older
	// ones, so edge cache occupancy slides in lockstep with the origin.
	Window int
	// TargetDuration is the origin's segment target; the playlist TTL
	// derives from it.
	TargetDuration time.Duration
	// PlaylistTTL is how long a cached playlist is served without
	// revalidation. Past the TTL the edge still answers immediately from
	// cache (stale-while-revalidate) but schedules an async refresh.
	// Defaults to TargetDuration/2, the staleness bound a polling player
	// effectively sees through a CDN edge.
	PlaylistTTL time.Duration
	// FillTimeout bounds each background origin fetch. Defaults to 5 s.
	// It is the overall budget for one fill operation — attempts,
	// backoff and all.
	FillTimeout time.Duration
	// FillAttempts caps upstream attempts inside one single-flight fill:
	// a transient failure is retried (with backoff) instead of being
	// published to every coalesced waiter. Defaults to
	// DefaultFillAttempts; 404s and other 4xx are terminal.
	FillAttempts int
	// AttemptTimeout bounds each individual attempt, carved from the
	// FillTimeout budget. Defaults to FillTimeout/FillAttempts.
	AttemptTimeout time.Duration
	// RetryBackoff is the base of the jittered doubling backoff between
	// attempts. Defaults to 50 ms.
	RetryBackoff time.Duration
	// NegativeTTL is how long a failed segment fill is answered from the
	// negative cache without re-probing upstream, shielding a struggling
	// origin from per-viewer retry storms. Defaults to TargetDuration/4.
	NegativeTTL time.Duration
	// MaxConcurrentFills caps this broadcast's concurrent upstream segment
	// fetches (origin or peer), so one hot broadcast cannot monopolize its
	// peers or the POP's egress: demand fills past the cap queue (counted
	// as FillCapWaits), background prefetches are skipped instead of tying
	// up fill workers. Defaults to DefaultFillConcurrency.
	MaxConcurrentFills int
	// Enqueue runs a background job (the POP's FillWorker); when nil the
	// replica spawns a goroutine per job.
	Enqueue func(func()) bool
	// Now is the clock, injectable for deterministic staleness tests.
	Now func() time.Time
}

// fillResult is one in-flight origin fetch shared by every request that
// arrived while it was running (single-flight).
type fillResult struct {
	done chan struct{}
	data []byte
	pl   MediaPlaylist
	err  error
}

// Replica is a POP's async cache of one broadcast: segments fill
// origin→edge exactly once regardless of concurrent demand, the cache
// window slides with the origin's, and playlists are served
// stale-while-revalidate.
type Replica struct {
	src            SegmentSource
	keep           int
	ttl            time.Duration
	fillTimeout    time.Duration
	attempts       int
	attemptTimeout time.Duration
	backoff        time.Duration
	negTTL         time.Duration
	enqueue        func(func()) bool
	now            func() time.Time
	// fillSem bounds concurrent upstream segment fetches (the
	// per-broadcast fill concurrency cap).
	fillSem chan struct{}

	mu       sync.Mutex
	segs     map[int][]byte
	maxSeq   int // highest sequence observed (stored or listed)
	inflight map[int]*fillResult
	negCache map[int]negEntry

	plRaw        []byte
	pl           MediaPlaylist
	plFetched    time.Time
	plInflight   *fillResult // cold-cache synchronous fetch
	plRefreshing bool        // async revalidation scheduled/running
	final        bool        // playlist carried #EXT-X-ENDLIST

	// Counters (atomic: read by snapshots while requests are in flight).
	fills             atomic.Int64
	fillBytes         atomic.Int64
	fillErrors        atomic.Int64
	singleFlightHits  atomic.Int64
	playlistRefreshes atomic.Int64
	playlistBytes     atomic.Int64
	staleServes       atomic.Int64
	evictions         atomic.Int64
	prefetchDropped   atomic.Int64
	fillCapWaits      atomic.Int64
	warmups           atomic.Int64
	fillRetries       atomic.Int64
	negativeHits      atomic.Int64
}

// negEntry is one negative-cache record: the error a recent fill ended
// with and how long to keep answering with it.
type negEntry struct {
	err   error
	until time.Time
}

// DefaultFillConcurrency is the per-broadcast cap on concurrent upstream
// segment fetches.
const DefaultFillConcurrency = 4

// DefaultFillAttempts is the per-fill upstream attempt budget inside the
// single-flight.
const DefaultFillAttempts = 3

// NewReplica builds an edge replica pulling from cfg.Source.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindowSize
	}
	if cfg.TargetDuration <= 0 {
		cfg.TargetDuration = DefaultSegmentTarget
	}
	if cfg.PlaylistTTL <= 0 {
		cfg.PlaylistTTL = cfg.TargetDuration / 2
	}
	if cfg.FillTimeout <= 0 {
		cfg.FillTimeout = 5 * time.Second
	}
	if cfg.Enqueue == nil {
		cfg.Enqueue = func(job func()) bool { go job(); return true }
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxConcurrentFills <= 0 {
		cfg.MaxConcurrentFills = DefaultFillConcurrency
	}
	if cfg.FillAttempts <= 0 {
		cfg.FillAttempts = DefaultFillAttempts
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = cfg.FillTimeout / time.Duration(cfg.FillAttempts)
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.NegativeTTL <= 0 {
		cfg.NegativeTTL = cfg.TargetDuration / 4
	}
	return &Replica{
		src:            cfg.Source,
		keep:           cfg.Window + 2, // parity with Segmenter.maxKeep
		ttl:            cfg.PlaylistTTL,
		fillTimeout:    cfg.FillTimeout,
		attempts:       cfg.FillAttempts,
		attemptTimeout: cfg.AttemptTimeout,
		backoff:        cfg.RetryBackoff,
		negTTL:         cfg.NegativeTTL,
		enqueue:        cfg.Enqueue,
		now:            cfg.Now,
		fillSem:        make(chan struct{}, cfg.MaxConcurrentFills),
		segs:           map[int][]byte{},
		maxSeq:         -1,
		inflight:       map[int]*fillResult{},
		negCache:       map[int]negEntry{},
	}
}

// ReplicaStats is a point-in-time copy of a replica's fill counters.
type ReplicaStats struct {
	// Fills is the number of origin segment fetches; FillBytes their
	// payload volume; FillErrors the failed ones (including expired-404s).
	Fills, FillBytes, FillErrors int64
	// SingleFlightHits counts requests that coalesced onto an already
	// in-flight origin fetch instead of issuing their own.
	SingleFlightHits int64
	// PlaylistRefreshes counts origin playlist fetches (cold fills and
	// revalidations); PlaylistBytes their volume.
	PlaylistRefreshes, PlaylistBytes int64
	// StaleServes counts playlist responses served past the TTL while a
	// revalidation was pending — the stale-while-revalidate path.
	StaleServes int64
	// Evictions counts segments dropped by the sliding cache window.
	Evictions int64
	// PrefetchDropped counts background jobs the fill queue rejected or
	// the fill concurrency cap skipped.
	PrefetchDropped int64
	// FillCapWaits counts demand fills that found the per-broadcast fill
	// concurrency cap saturated and had to queue — a non-zero value is the
	// observable signature of a capped hot broadcast. FillCap echoes the
	// configured cap.
	FillCapWaits int64
	FillCap      int
	// Warmups counts promotion warm-ups scheduled for this replica.
	Warmups int64
	// FillRetries counts extra upstream attempts spent on transient fill
	// failures inside the single-flight — Fills still counts operations,
	// not attempts, so Fills stays comparable across PRs.
	FillRetries int64
	// NegativeHits counts requests answered from the negative cache
	// without touching upstream.
	NegativeHits int64
	// CachedSegments is the current cache occupancy.
	CachedSegments int
	// PlaylistAge is the time since the cached playlist was fetched from
	// origin (0 when never fetched or final): the edge's playlist lag.
	PlaylistAge time.Duration
	// Final reports that the cached playlist carries #EXT-X-ENDLIST.
	Final bool
}

// Stats snapshots the replica's counters.
func (r *Replica) Stats() ReplicaStats {
	st := ReplicaStats{
		Fills:             r.fills.Load(),
		FillBytes:         r.fillBytes.Load(),
		FillErrors:        r.fillErrors.Load(),
		SingleFlightHits:  r.singleFlightHits.Load(),
		PlaylistRefreshes: r.playlistRefreshes.Load(),
		PlaylistBytes:     r.playlistBytes.Load(),
		StaleServes:       r.staleServes.Load(),
		Evictions:         r.evictions.Load(),
		PrefetchDropped:   r.prefetchDropped.Load(),
		FillCapWaits:      r.fillCapWaits.Load(),
		FillCap:           cap(r.fillSem),
		Warmups:           r.warmups.Load(),
		FillRetries:       r.fillRetries.Load(),
		NegativeHits:      r.negativeHits.Load(),
	}
	r.mu.Lock()
	st.CachedSegments = len(r.segs)
	st.Final = r.final
	if r.plRaw != nil && !r.final {
		st.PlaylistAge = r.now().Sub(r.plFetched)
	}
	r.mu.Unlock()
	return st
}

// ServeHTTP serves "playlist.m3u8" and "segNNNNNN.ts" paths (any prefix)
// from the edge cache, filling from origin as needed.
func (r *Replica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	base := path[strings.LastIndexByte(path, '/')+1:]
	switch {
	case base == "playlist.m3u8":
		raw, pl, err := r.Playlist(req.Context())
		if err != nil {
			upstreamStatus(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
		if pl.Ended {
			w.Header().Set("Cache-Control", "max-age=86400, immutable")
		} else {
			w.Header().Set("Cache-Control", "max-age=1")
		}
		w.Write(raw)
	case strings.HasPrefix(base, "seg") && strings.HasSuffix(base, ".ts"):
		seq, err := ParseSegmentName(base)
		if err != nil {
			http.Error(w, "bad segment name", http.StatusBadRequest)
			return
		}
		data, err := r.Segment(req.Context(), seq)
		if err != nil {
			upstreamStatus(w, err)
			return
		}
		w.Header().Set("Content-Type", "video/MP2T")
		w.Header().Set("Cache-Control", "max-age=3600")
		w.Write(data)
	default:
		http.NotFound(w, req)
	}
}

// upstreamStatus maps a fill error onto the edge response: origin 404s
// (expired or unknown) pass through, an open breaker is a 503 (the edge
// knows its upstream is down and wants the viewer to fail over rather
// than retry here), everything else is a bad gateway.
func upstreamStatus(w http.ResponseWriter, err error) {
	if ue, ok := err.(*UpstreamError); ok && ue.Status == http.StatusNotFound {
		http.Error(w, "segment or playlist not at origin", http.StatusNotFound)
		return
	}
	if errors.Is(err, ErrBreakerOpen) {
		http.Error(w, "upstream circuit open", http.StatusServiceUnavailable)
		return
	}
	http.Error(w, "origin fill failed", http.StatusBadGateway)
}

// Segment returns the segment's bytes, serving from cache when present
// and otherwise filling from origin exactly once no matter how many
// viewers ask concurrently. The fill itself runs detached from any single
// requester's context (bounded by FillTimeout): one viewer disconnecting
// must not fail the fetch for every coalesced waiter.
func (r *Replica) Segment(ctx context.Context, seq int) ([]byte, error) {
	r.mu.Lock()
	if data, ok := r.segs[seq]; ok {
		r.mu.Unlock()
		return data, nil
	}
	if e, ok := r.negCache[seq]; ok {
		if r.now().Before(e.until) {
			r.mu.Unlock()
			r.negativeHits.Add(1)
			return nil, e.err
		}
		delete(r.negCache, seq)
	}
	f, ok := r.inflight[seq]
	if ok {
		r.mu.Unlock()
		r.singleFlightHits.Add(1)
	} else {
		f = &fillResult{done: make(chan struct{})}
		r.inflight[seq] = f
		r.mu.Unlock()
		go r.fillSegment(seq, f)
	}
	select {
	case <-f.done:
		return f.data, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// acquireFill takes a slot of the per-broadcast fill cap, counting the
// acquisitions that had to wait for one.
func (r *Replica) acquireFill() {
	select {
	case r.fillSem <- struct{}{}:
	default:
		r.fillCapWaits.Add(1)
		r.fillSem <- struct{}{}
	}
}

func (r *Replica) releaseFill() { <-r.fillSem }

// fillSegment performs the detached origin fetch backing one single-flight
// entry and publishes the result to every waiter. The fetch holds one slot
// of the per-broadcast fill cap, so a broadcast with a segment storm queues
// here instead of monopolizing its peers and the origin link.
func (r *Replica) fillSegment(seq int, f *fillResult) {
	r.acquireFill()
	r.fillSegmentReserved(seq, f)
}

// fillSegmentReserved runs the upstream fetch with a fill-cap slot already
// held, publishes the result, and releases the slot. The attempt budget
// lives inside the single flight: a transient attempt failure is retried
// with jittered backoff (within the overall FillTimeout) before anything
// is published, so one lost request no longer fails every coalesced
// waiter. A fill that still ends in error seeds the negative cache.
func (r *Replica) fillSegmentReserved(seq int, f *fillResult) {
	defer r.releaseFill()
	var data []byte
	err := r.fillWithRetries(func(ctx context.Context) error {
		var aerr error
		data, aerr = r.src.FetchSegment(ctx, seq)
		return aerr
	})
	r.fills.Add(1)
	if err != nil {
		r.fillErrors.Add(1)
	} else {
		r.fillBytes.Add(int64(len(data)))
	}

	r.mu.Lock()
	delete(r.inflight, seq)
	if err == nil {
		r.storeSegLocked(seq, data)
	} else if r.negTTL > 0 {
		r.negCache[seq] = negEntry{err: err, until: r.now().Add(r.negTTL)}
	}
	r.mu.Unlock()
	f.data, f.err = data, err
	close(f.done)
}

// fillWithRetries runs one fill operation: up to r.attempts calls of do,
// each bounded by AttemptTimeout carved from the overall FillTimeout
// budget, with jittered doubling backoff between attempts. Terminal
// errors (4xx — the upstream answered) short-circuit.
func (r *Replica) fillWithRetries(do func(ctx context.Context) error) error {
	deadline := time.Now().Add(r.fillTimeout)
	var err error
	for attempt := 0; attempt < r.attempts; attempt++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		per := r.attemptTimeout
		if per > remaining {
			per = remaining
		}
		ctx, cancel := context.WithTimeout(context.Background(), per)
		err = do(ctx)
		cancel()
		if err == nil || !retryableFill(err) {
			return err
		}
		wait := jitteredBackoff(r.backoff, attempt)
		if wait >= time.Until(deadline) {
			break
		}
		r.fillRetries.Add(1)
		time.Sleep(wait)
	}
	return err
}

// retryableFill reports whether a failed attempt is worth retrying: 4xx
// responses are authoritative (the segment is gone or unknown), while
// transport errors, timeouts, 5xx and an open breaker may clear.
func retryableFill(err error) bool {
	var ue *UpstreamError
	if errors.As(err, &ue) {
		return ue.Status >= http.StatusInternalServerError
	}
	return true
}

// jitteredBackoff doubles the base per attempt and jitters the result
// into [d/2, d] so coalesced broadcasts do not retry in lockstep.
func jitteredBackoff(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// storeSegLocked inserts a filled segment and slides the cache window: the
// replica keeps the same fetch horizon as the origin segmenter, so edge
// occupancy cannot grow past window+grace however long the broadcast runs.
func (r *Replica) storeSegLocked(seq int, data []byte) {
	if seq <= r.maxSeq-r.keep {
		// Already outside the window (a very late fill); do not resurrect.
		r.evictions.Add(1)
		return
	}
	r.segs[seq] = data
	if seq > r.maxSeq {
		r.maxSeq = seq
	}
	r.evictLocked()
}

func (r *Replica) evictLocked() {
	for k := range r.segs {
		if k <= r.maxSeq-r.keep {
			delete(r.segs, k)
			r.evictions.Add(1)
		}
	}
}

// CachedSegment returns a segment only if the edge already holds it — the
// cache-only read backing the peer-fill protocol, which must never trigger
// a recursive fill.
func (r *Replica) CachedSegment(seq int) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, ok := r.segs[seq]
	return data, ok
}

// WarmUp schedules a background playlist fetch — which prefetches the live
// window — so a freshly promoted or registered replica is warm before its
// first viewer arrives, instead of that viewer paying the cold-cache miss
// storm. On a replica that already holds a (possibly empty or stale)
// playlist it schedules a revalidation instead: a promotion-time warm-up
// runs before the first segment is cut, so the caller re-warms once
// content exists. Final playlists need no warming. It reports whether the
// warm-up was scheduled (or already pending), so a caller can retry a
// rejection from a saturated fill queue.
func (r *Replica) WarmUp() bool {
	r.mu.Lock()
	if r.plRaw != nil {
		scheduled := true
		if !r.final {
			scheduled = r.scheduleRefreshLocked()
			if scheduled {
				r.warmups.Add(1)
			}
		}
		r.mu.Unlock()
		return scheduled
	}
	r.mu.Unlock()
	accepted := r.enqueue(func() {
		ctx, cancel := context.WithTimeout(context.Background(), r.fillTimeout)
		defer cancel()
		// Cold single-flight playlist fetch; its success path prefetches
		// every listed segment.
		r.Playlist(ctx)
	})
	if accepted {
		r.warmups.Add(1)
	} else {
		r.prefetchDropped.Add(1)
	}
	return accepted
}

// Playlist returns the marshalled playlist and its parsed form. A cached
// copy — fresh, stale, or final — is served immediately; staleness only
// schedules an asynchronous revalidation (stale-while-revalidate). Only a
// cold cache fetches synchronously, and concurrent cold requests share one
// origin fetch.
func (r *Replica) Playlist(ctx context.Context) ([]byte, MediaPlaylist, error) {
	r.mu.Lock()
	if r.plRaw != nil {
		raw, pl := r.plRaw, r.pl
		if !r.final && r.now().Sub(r.plFetched) > r.ttl {
			r.staleServes.Add(1)
			r.scheduleRefreshLocked()
		}
		r.mu.Unlock()
		return raw, pl, nil
	}
	f := r.plInflight
	if f != nil {
		r.mu.Unlock()
		r.singleFlightHits.Add(1)
	} else {
		f = &fillResult{done: make(chan struct{})}
		r.plInflight = f
		r.mu.Unlock()
		// Detached like segment fills: the cold fetch must survive the
		// initiating requester disconnecting, and shares the demand-path
		// retry budget — a cold viewer join must ride out a transient
		// origin fault.
		go func() {
			var raw []byte
			var pl MediaPlaylist
			err := r.fillWithRetries(func(fctx context.Context) error {
				var ferr error
				raw, pl, ferr = r.fetchPlaylist(fctx)
				return ferr
			})
			r.mu.Lock()
			r.plInflight = nil
			if err == nil {
				r.storePlaylistLocked(raw, pl)
			}
			r.mu.Unlock()
			f.data, f.pl, f.err = raw, pl, err
			close(f.done)
			if err == nil {
				r.prefetch(pl)
			}
		}()
	}
	select {
	case <-f.done:
		return f.data, f.pl, f.err
	case <-ctx.Done():
		return nil, MediaPlaylist{}, ctx.Err()
	}
}

// fetchPlaylist pulls and parses the origin playlist, counting the fill.
func (r *Replica) fetchPlaylist(ctx context.Context) ([]byte, MediaPlaylist, error) {
	raw, err := r.src.FetchPlaylist(ctx)
	r.playlistRefreshes.Add(1)
	if err != nil {
		r.fillErrors.Add(1)
		return nil, MediaPlaylist{}, err
	}
	r.playlistBytes.Add(int64(len(raw)))
	pl, err := ParseMediaPlaylist(raw)
	if err != nil {
		r.fillErrors.Add(1)
		return nil, MediaPlaylist{}, err
	}
	return raw, pl, nil
}

// storePlaylistLocked installs a fetched playlist and advances the
// eviction horizon to the newest listed sequence, so segments the edge
// never re-fetches still age out of the cache.
func (r *Replica) storePlaylistLocked(raw []byte, pl MediaPlaylist) {
	r.plRaw, r.pl = raw, pl
	r.plFetched = r.now()
	if pl.Ended {
		r.final = true
	}
	for _, s := range pl.Segments {
		if s.Sequence > r.maxSeq {
			r.maxSeq = s.Sequence
		}
	}
	r.evictLocked()
}

// prefetchSegment fills seq on a background worker if it is neither
// cached nor in flight AND a fill-cap slot is immediately free. The
// check-and-reserve is atomic (non-blocking send under the replica lock),
// so a capped hot broadcast can never park a fill worker behind its
// demand queue — the skipped segment is re-offered by the next
// stale-revalidate cycle.
func (r *Replica) prefetchSegment(seq int) {
	r.mu.Lock()
	if _, have := r.segs[seq]; have {
		r.mu.Unlock()
		return
	}
	if _, filling := r.inflight[seq]; filling {
		r.mu.Unlock()
		return
	}
	if e, bad := r.negCache[seq]; bad && r.now().Before(e.until) {
		// A demand fill just failed here; don't spend background budget
		// re-probing until the negative entry ages out.
		r.mu.Unlock()
		return
	}
	select {
	case r.fillSem <- struct{}{}:
	default:
		r.mu.Unlock()
		r.prefetchDropped.Add(1)
		return
	}
	f := &fillResult{done: make(chan struct{})}
	r.inflight[seq] = f
	r.mu.Unlock()
	// Demand requests arriving now coalesce onto this fill (single-flight).
	r.fillSegmentReserved(seq, f)
}

// scheduleRefreshLocked queues one async revalidation; while it is
// pending, further stale serves do not pile up more refreshes. It reports
// whether a revalidation is now scheduled or already pending (false only
// when the fill queue rejected the job).
func (r *Replica) scheduleRefreshLocked() bool {
	if r.plRefreshing {
		return true
	}
	r.plRefreshing = true
	accepted := r.enqueue(func() {
		ctx, cancel := context.WithTimeout(context.Background(), r.fillTimeout)
		defer cancel()
		raw, pl, err := r.fetchPlaylist(ctx)
		r.mu.Lock()
		r.plRefreshing = false
		if err == nil {
			r.storePlaylistLocked(raw, pl)
		}
		r.mu.Unlock()
		if err == nil {
			r.prefetch(pl)
		}
	})
	if !accepted {
		r.plRefreshing = false
		r.prefetchDropped.Add(1)
	}
	return accepted
}

// prefetch warms the cache with listed segments the edge does not hold
// yet, so a viewer arriving after the refresh hits warm segments instead
// of paying the origin round-trip.
func (r *Replica) prefetch(pl MediaPlaylist) {
	for _, s := range pl.Segments {
		seq := s.Sequence
		r.mu.Lock()
		_, have := r.segs[seq]
		_, filling := r.inflight[seq]
		r.mu.Unlock()
		if have || filling {
			continue
		}
		accepted := r.enqueue(func() { r.prefetchSegment(seq) })
		if !accepted {
			r.prefetchDropped.Add(1)
		}
	}
}
