package hls

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTieredSourcePeerFirst(t *testing.T) {
	peerEmpty := newFakeSource()
	peerWarm := newFakeSource()
	peerWarm.setSegment(7, []byte("from-peer"))
	origin := newFakeSource()
	origin.setSegment(7, []byte("from-origin"))

	src := &TieredSource{Peers: []SegmentSource{peerEmpty, peerWarm}, Origin: origin}
	data, err := src.FetchSegment(context.Background(), 7)
	if err != nil || string(data) != "from-peer" {
		t.Fatalf("FetchSegment = %q, %v; want peer copy", data, err)
	}
	st := src.Stats()
	if st.PeerFills != 1 || st.PeerMisses != 1 || st.OriginFills != 0 {
		t.Errorf("stats = %+v, want 1 peer fill, 1 miss, 0 origin", st)
	}
	if st.PeerFillBytes != int64(len("from-peer")) {
		t.Errorf("PeerFillBytes = %d", st.PeerFillBytes)
	}
	if origin.segmentFetches.Load() != 0 {
		t.Error("origin was hit although a peer held the segment")
	}
}

func TestTieredSourceFallsBackToOrigin(t *testing.T) {
	peer1, peer2 := newFakeSource(), newFakeSource()
	origin := newFakeSource()
	origin.setSegment(3, []byte("authoritative"))

	src := &TieredSource{Peers: []SegmentSource{peer1, peer2}, Origin: origin}
	data, err := src.FetchSegment(context.Background(), 3)
	if err != nil || string(data) != "authoritative" {
		t.Fatalf("FetchSegment = %q, %v", data, err)
	}
	st := src.Stats()
	if st.PeerFills != 0 || st.PeerMisses != 2 || st.OriginFills != 1 {
		t.Errorf("stats = %+v, want 0/2/1", st)
	}
}

func TestTieredSourcePlaylistIsOriginOnly(t *testing.T) {
	peer := newFakeSource()
	peer.setPlaylist(livePlaylist(9)) // a stale peer copy that must not be used
	origin := newFakeSource()
	origin.setPlaylist(livePlaylist(1, 2))

	src := &TieredSource{Peers: []SegmentSource{peer}, Origin: origin}
	raw, err := src.FetchPlaylist(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := ParseMediaPlaylist(raw)
	if err != nil || len(pl.Segments) != 2 {
		t.Fatalf("playlist = %+v, %v; want the origin's 2-segment window", pl, err)
	}
	if peer.playlistFetches.Load() != 0 {
		t.Error("peer asked for a playlist; playlists are origin-only")
	}
}

// hangingSource blocks every fetch until the caller's context expires —
// a peer that accepts connections but never answers.
type hangingSource struct{ fetches atomic.Int64 }

func (s *hangingSource) FetchPlaylist(ctx context.Context) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (s *hangingSource) FetchSegment(ctx context.Context, seq int) ([]byte, error) {
	s.fetches.Add(1)
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestTieredSourcePerTierDeadline pins the budget-carving bugfix: one
// hung peer used to consume the whole fill window, failing the fill even
// though a later tier held the segment.
func TestTieredSourcePerTierDeadline(t *testing.T) {
	hung := &hangingSource{}
	warm := newFakeSource()
	warm.setSegment(4, []byte("from-second-peer"))
	origin := newFakeSource()

	src := &TieredSource{Peers: []SegmentSource{hung, warm}, Origin: origin}
	ctx, cancel := context.WithTimeout(context.Background(), 900*time.Millisecond)
	defer cancel()
	start := time.Now()
	data, err := src.FetchSegment(ctx, 4)
	if err != nil || string(data) != "from-second-peer" {
		t.Fatalf("FetchSegment = %q, %v; want the second peer's copy", data, err)
	}
	// The hung peer got remaining/3 (~300ms), not the whole 900ms.
	if e := time.Since(start); e > 700*time.Millisecond {
		t.Errorf("fill took %v; hung peer consumed more than its share", e)
	}
	st := src.Stats()
	if st.PeerMisses != 1 || st.PeerFills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// A hung peer with no caller deadline is bounded by ProbeTimeout, so the
// origin is still reached.
func TestTieredSourceProbeTimeoutWithoutDeadline(t *testing.T) {
	hung := &hangingSource{}
	origin := newFakeSource()
	origin.setSegment(2, []byte("authoritative"))
	src := &TieredSource{
		Peers:        []SegmentSource{hung},
		Origin:       origin,
		ProbeTimeout: 50 * time.Millisecond,
	}
	start := time.Now()
	data, err := src.FetchSegment(context.Background(), 2)
	if err != nil || string(data) != "authoritative" {
		t.Fatalf("FetchSegment = %q, %v", data, err)
	}
	if e := time.Since(start); e > time.Second {
		t.Errorf("fill took %v, want ~ProbeTimeout", e)
	}
}

// An open peer breaker is skipped in O(1): no probe, no timeout, and the
// skip is counted separately from real misses.
func TestTieredSourceSkipsOpenBreakerPeer(t *testing.T) {
	hung := &hangingSource{}
	b := NewBreaker(1, time.Minute, nil)
	b.Observe(true) // trip it
	origin := newFakeSource()
	origin.setSegment(9, []byte("authoritative"))

	src := &TieredSource{
		Peers:  []SegmentSource{&BreakerSource{Source: hung, Breaker: b}},
		Origin: origin,
	}
	start := time.Now()
	data, err := src.FetchSegment(context.Background(), 9)
	if err != nil || string(data) != "authoritative" {
		t.Fatalf("FetchSegment = %q, %v", data, err)
	}
	if e := time.Since(start); e > 500*time.Millisecond {
		t.Errorf("skip took %v, want O(1)", e)
	}
	if hung.fetches.Load() != 0 {
		t.Error("open breaker still probed the dead peer")
	}
	st := src.Stats()
	if st.PeerSkips != 1 || st.PeerMisses != 0 {
		t.Errorf("stats = %+v, want 1 skip, 0 misses", st)
	}
}

// gatedSource wraps a fakeSource with a concurrency high-water mark and a
// release gate, to observe the per-broadcast fill cap from upstream.
type gatedSource struct {
	inner    *fakeSource
	cur, max atomic.Int64
	release  chan struct{}
}

func newGatedSource() *gatedSource {
	return &gatedSource{inner: newFakeSource(), release: make(chan struct{})}
}

func (s *gatedSource) FetchPlaylist(ctx context.Context) ([]byte, error) {
	return s.inner.FetchPlaylist(ctx)
}

func (s *gatedSource) FetchSegment(ctx context.Context, seq int) ([]byte, error) {
	cur := s.cur.Add(1)
	defer s.cur.Add(-1)
	for {
		max := s.max.Load()
		if cur <= max || s.max.CompareAndSwap(max, cur) {
			break
		}
	}
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.FetchSegment(ctx, seq)
}

// TestReplicaFillCapBoundsConcurrency pins the per-broadcast fill cap: a
// hot broadcast's upstream fetch concurrency never exceeds the cap, the
// queued fills are counted (a saturated cap is observable, not silent),
// and a capped broadcast cannot starve another replica's fills.
func TestReplicaFillCapBoundsConcurrency(t *testing.T) {
	hot := newGatedSource()
	for seq := 0; seq < 6; seq++ {
		hot.inner.setSegment(seq, []byte{byte(seq)})
	}
	q := &jobQueue{}
	repA := NewReplica(ReplicaConfig{Source: hot, MaxConcurrentFills: 2, Enqueue: q.enqueue})
	if got := repA.Stats().FillCap; got != 2 {
		t.Fatalf("FillCap = %d, want 2", got)
	}

	var wg sync.WaitGroup
	for seq := 0; seq < 6; seq++ {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			if _, err := repA.Segment(context.Background(), seq); err != nil {
				t.Errorf("segment %d: %v", seq, err)
			}
		}(seq)
	}
	// The cap admits exactly two upstream fetches; the other four queue.
	waitUntil(t, func() bool { return hot.cur.Load() == 2 })
	waitUntil(t, func() bool { return repA.Stats().FillCapWaits == 4 })

	// A different broadcast's replica fills promptly while A is saturated:
	// the cap is per broadcast, not per POP.
	cold := newFakeSource()
	cold.setSegment(0, []byte("other"))
	repB := NewReplica(ReplicaConfig{Source: cold, Enqueue: q.enqueue})
	done := make(chan error, 1)
	go func() {
		_, err := repB.Segment(context.Background(), 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("other replica's fill failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("other replica's fill starved behind the capped broadcast")
	}

	close(hot.release)
	wg.Wait()
	if got := hot.max.Load(); got != 2 {
		t.Errorf("upstream concurrency high-water = %d, want 2", got)
	}
	if st := repA.Stats(); st.Fills != 6 {
		t.Errorf("fills = %d, want 6", st.Fills)
	}
}

// TestReplicaPrefetchSkipsWhenCapSaturated: background prefetch jobs must
// not park fill workers behind a saturated broadcast.
func TestReplicaPrefetchSkipsWhenCapSaturated(t *testing.T) {
	hot := newGatedSource()
	hot.inner.setPlaylist(livePlaylist(0, 1))
	hot.inner.setSegment(0, []byte{0})
	hot.inner.setSegment(1, []byte{1})
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{Source: hot, MaxConcurrentFills: 1, Enqueue: q.enqueue})

	// Saturate the cap with a demand fill held open at the source.
	go rep.Segment(context.Background(), 0)
	waitUntil(t, func() bool { return hot.cur.Load() == 1 })

	// A playlist fill schedules prefetches; running them while saturated
	// must skip, not block.
	if _, _, err := rep.Playlist(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return q.size() > 0 })
	ran := make(chan struct{})
	go func() {
		q.runAll()
		close(ran)
	}()
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("prefetch job blocked on the saturated fill cap")
	}
	if rep.Stats().PrefetchDropped == 0 {
		t.Error("skipped prefetch not counted")
	}
	close(hot.release)
}

func TestReplicaWarmUpPrefetchesWindow(t *testing.T) {
	src := newFakeSource()
	src.setPlaylist(livePlaylist(4, 5, 6))
	for seq := 4; seq <= 6; seq++ {
		src.setSegment(seq, bytes.Repeat([]byte{byte(seq)}, 32))
	}
	q := &jobQueue{}
	rep := NewReplica(ReplicaConfig{Source: src, Enqueue: q.enqueue})

	rep.WarmUp()
	if st := rep.Stats(); st.Warmups != 1 {
		t.Fatalf("Warmups = %d, want 1", st.Warmups)
	}
	// Run the warm-up job (playlist fetch), then the prefetches it spawns.
	waitUntil(t, func() bool { return q.size() == 1 })
	q.runAll()
	waitUntil(t, func() bool { return q.size() == 3 })
	q.runAll()

	for seq := 4; seq <= 6; seq++ {
		if _, ok := rep.CachedSegment(seq); !ok {
			t.Errorf("segment %d not warmed", seq)
		}
	}
	// CachedSegment is cache-only: the probe above must not have fetched.
	if got := src.segmentFetches.Load(); got != 3 {
		t.Errorf("origin segment fetches = %d, want 3 (prefetch only)", got)
	}
	if _, ok := rep.CachedSegment(99); ok {
		t.Error("CachedSegment invented a segment")
	}

	// The first viewer hits a fully warm edge: no further origin traffic.
	if _, _, err := rep.Playlist(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Segment(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if src.playlistFetches.Load() != 1 || src.segmentFetches.Load() != 3 {
		t.Errorf("viewer after warm-up hit origin (%d playlist, %d segment fetches)",
			src.playlistFetches.Load(), src.segmentFetches.Load())
	}

	// Re-warming a warm replica revalidates: the promoter calls WarmUp
	// again once new content exists, and the refresh prefetches it.
	src.setPlaylist(livePlaylist(5, 6, 7))
	src.setSegment(7, bytes.Repeat([]byte{7}, 32))
	rep.WarmUp()
	if q.size() != 1 {
		t.Fatalf("re-warm queued %d jobs, want 1 revalidation", q.size())
	}
	q.runAll()
	waitUntil(t, func() bool { return q.size() == 1 }) // prefetch for seg 7
	q.runAll()
	if _, ok := rep.CachedSegment(7); !ok {
		t.Error("re-warm did not prefetch the newly listed segment")
	}
	if st := rep.Stats(); st.Warmups != 2 {
		t.Errorf("Warmups = %d, want 2", st.Warmups)
	}

	// A final playlist needs no warming.
	endedPl := livePlaylist(5, 6, 7)
	endedPl.Ended = true
	src.setPlaylist(endedPl)
	rep.WarmUp() // schedules one more revalidation; after it, Final is set
	q.runAll()
	waitUntil(t, func() bool { return rep.Stats().Final })
	q.clear()
	before := rep.Stats().Warmups
	rep.WarmUp()
	if q.size() != 0 || rep.Stats().Warmups != before {
		t.Error("final replica scheduled a warm-up")
	}
}
