package hls

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// TieredSource is the hierarchical fill path of a geo-aware edge, the
// policy Fastly-style CDNs use to keep origin egress at O(clusters)
// instead of O(POPs) per segment: a missing segment is probed from
// cache-only peer POPs (nearest first) and only falls back to the origin
// when no peer holds it. Peers never fill recursively — a probe answers
// from cache or 404s — so a fill is at most two hops (origin → first POP
// in a cluster, then peer → the rest). Playlists always come from the
// origin: the live window must be fresh, and a peer's copy may be stale.
//
// TieredSource sits below a Replica's single-flight layer, so however
// many viewers fan in at one edge, the whole peer-then-origin cascade
// runs once per segment.
type TieredSource struct {
	// Peers are cache-only sources, tried in order (nearest first). A 404
	// means the peer does not hold the segment; any other error also falls
	// through to the next tier.
	Peers []SegmentSource
	// Origin is the authoritative source (required).
	Origin SegmentSource
	// ProbeTimeout caps each peer probe. Every probe additionally gets a
	// fair share of whatever budget remains on the caller's context
	// (remaining / tiers-left, origin counted as the last tier), so one
	// hung peer can delay but never consume the whole fill window.
	// Defaults to DefaultProbeTimeout.
	ProbeTimeout time.Duration

	// PeerFills counts segments served by a peer (origin egress avoided);
	// PeerFillBytes their volume; PeerMisses the probes that came back
	// empty or failed. PeerSkips counts probes skipped in O(1) because
	// the peer's circuit breaker was open — no timeout was risked.
	// OriginFills counts segment fetches that fell through to the origin
	// (successful or not).
	PeerFills     atomic.Int64
	PeerFillBytes atomic.Int64
	PeerMisses    atomic.Int64
	PeerSkips     atomic.Int64
	OriginFills   atomic.Int64
}

// DefaultProbeTimeout bounds one cache-only peer probe. A probe is a
// single RTT plus a cached read, so it needs far less than a full
// origin fill.
const DefaultProbeTimeout = time.Second

// FetchPlaylist implements SegmentSource: playlists are origin-only.
func (t *TieredSource) FetchPlaylist(ctx context.Context) ([]byte, error) {
	return t.Origin.FetchPlaylist(ctx)
}

// FetchSegment implements SegmentSource: probe peers nearest-first, fall
// back to the origin. Each probe runs under its own deadline carved from
// the remaining context budget — the bugfix for all tiers sharing one
// flat FillTimeout, where the first hung peer starved every tier after
// it.
func (t *TieredSource) FetchSegment(ctx context.Context, seq int) ([]byte, error) {
	probeMax := t.ProbeTimeout
	if probeMax <= 0 {
		probeMax = DefaultProbeTimeout
	}
	for i, p := range t.Peers {
		per := probeMax
		if deadline, ok := ctx.Deadline(); ok {
			// Fair share of the remaining budget across the tiers still
			// to try (peers left + the origin).
			share := time.Until(deadline) / time.Duration(len(t.Peers)-i+1)
			if share < per {
				per = share
			}
			if per <= 0 {
				return nil, context.DeadlineExceeded
			}
		}
		pctx, cancel := context.WithTimeout(ctx, per)
		data, err := p.FetchSegment(pctx, seq)
		cancel()
		if err == nil {
			t.PeerFills.Add(1)
			t.PeerFillBytes.Add(int64(len(data)))
			return data, nil
		}
		if errors.Is(err, ErrBreakerOpen) {
			t.PeerSkips.Add(1)
		} else {
			t.PeerMisses.Add(1)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	t.OriginFills.Add(1)
	return t.Origin.FetchSegment(ctx, seq)
}

// Stats returns a point-in-time copy of the tier counters.
func (t *TieredSource) Stats() TieredStats {
	return TieredStats{
		PeerFills:     t.PeerFills.Load(),
		PeerFillBytes: t.PeerFillBytes.Load(),
		PeerMisses:    t.PeerMisses.Load(),
		PeerSkips:     t.PeerSkips.Load(),
		OriginFills:   t.OriginFills.Load(),
	}
}

// TieredStats is a snapshot of one TieredSource's counters.
type TieredStats struct {
	PeerFills, PeerFillBytes, PeerMisses, PeerSkips, OriginFills int64
}
