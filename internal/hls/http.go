package hls

import (
	"net/http"
	"strings"
	"time"
)

// Origin serves a Segmenter's playlist and segments over HTTP. The service
// layer mounts one Origin per popular broadcast behind its CDN nodes.
type Origin struct {
	Seg *Segmenter
}

// ServeHTTP handles "playlist.m3u8" and "segNNNNNN.ts" paths (any prefix).
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	base := path[strings.LastIndexByte(path, '/')+1:]
	switch {
	case base == "playlist.m3u8":
		pl := o.Seg.Playlist()
		w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
		if pl.Ended {
			// A finished broadcast's playlist is final (#EXT-X-ENDLIST):
			// edges may cache it indefinitely and stop revalidating.
			w.Header().Set("Cache-Control", "max-age=86400, immutable")
		} else {
			w.Header().Set("Cache-Control", "max-age=1")
		}
		w.Write(pl.Marshal())
	case strings.HasPrefix(base, "seg") && strings.HasSuffix(base, ".ts"):
		seq, err := ParseSegmentName(base)
		if err != nil {
			http.Error(w, "bad segment name", http.StatusBadRequest)
			return
		}
		seg, ok := o.Seg.Segment(seq)
		if !ok {
			http.Error(w, "segment expired or not yet available", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "video/MP2T")
		w.Header().Set("Cache-Control", "max-age=3600")
		w.Write(seg.Data)
	default:
		http.NotFound(w, r)
	}
}

// FetchedSegment is one segment downloaded by the client, with the timing
// needed for QoE analysis.
type FetchedSegment struct {
	Sequence   int
	Duration   time.Duration
	Data       []byte
	FetchStart time.Time
	FetchEnd   time.Time
}
