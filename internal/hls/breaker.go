package hls

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file adds the per-upstream circuit breaker for the fill path. A
// POP probing a dead peer or a blackholed origin would otherwise pay a
// full per-attempt timeout on every fill; the breaker converts that into
// an O(1) skip after a handful of consecutive failures, then re-probes
// with a single request once a cooldown elapses.

// ErrBreakerOpen is returned without touching the upstream when the
// breaker is open (or a half-open probe is already in flight).
var ErrBreakerOpen = errors.New("hls: upstream circuit breaker open")

// BreakerState enumerates the circuit breaker state machine.
type BreakerState int32

const (
	// BreakerClosed passes every request through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// DefaultBreakerFailures is the consecutive-failure threshold that trips
// a breaker; DefaultBreakerCooldown how long it stays open before the
// half-open probe.
const (
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = 3 * time.Second
)

// Breaker is a consecutive-failure circuit breaker. The closed-state hot
// path is a single atomic load in Allow and one atomic op in Observe —
// no locks, no allocations — so wrapping every fill costs nothing while
// the upstream is healthy.
type Breaker struct {
	threshold int64
	cooldown  time.Duration
	now       func() time.Time

	state       atomic.Int32
	consecutive atomic.Int64
	trips       atomic.Int64
	rejects     atomic.Int64

	mu       sync.Mutex
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and staying open for cooldown. Zero values take the defaults;
// now is injectable for deterministic tests (nil = time.Now).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerFailures
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: int64(threshold), cooldown: cooldown, now: now}
}

// Allow reports whether a request may proceed. Open-state rejections and
// duplicate half-open probes return false; the caller should fail fast
// with ErrBreakerOpen and must not call Observe for a rejected request.
func (b *Breaker) Allow() bool {
	if BreakerState(b.state.Load()) == BreakerClosed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejects.Add(1)
			return false
		}
		b.state.Store(int32(BreakerHalfOpen))
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.rejects.Add(1)
			return false
		}
		b.probing = true
		return true
	}
}

// Observe records the outcome of an admitted request. Consecutive
// failures past the threshold trip the breaker open; a successful
// half-open probe closes it, a failed one re-opens it.
func (b *Breaker) Observe(failure bool) {
	if BreakerState(b.state.Load()) == BreakerClosed {
		if !failure {
			b.consecutive.Store(0)
			return
		}
		if b.consecutive.Add(1) < b.threshold {
			return
		}
		b.mu.Lock()
		if BreakerState(b.state.Load()) == BreakerClosed && b.consecutive.Load() >= b.threshold {
			b.tripLocked()
		}
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.tripLocked()
		} else {
			b.state.Store(int32(BreakerClosed))
			b.consecutive.Store(0)
		}
	case BreakerClosed:
		// Raced a close; fold the outcome into the fresh closed state.
		if failure {
			if b.consecutive.Add(1) >= b.threshold {
				b.tripLocked()
			}
		} else {
			b.consecutive.Store(0)
		}
	case BreakerOpen:
		// Late outcome from a request admitted before the trip; the
		// breaker already decided, ignore it.
	}
}

func (b *Breaker) tripLocked() {
	b.state.Store(int32(BreakerOpen))
	b.openedAt = b.now()
	b.consecutive.Store(0)
	b.trips.Add(1)
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// Trips counts closed/half-open → open transitions.
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// Rejects counts requests refused while open (or while a probe held the
// half-open slot).
func (b *Breaker) Rejects() int64 { return b.rejects.Load() }

// breakerFailure classifies a fill error for the breaker. Responses that
// prove the upstream is alive — success and 4xx (an expired segment is a
// healthy origin saying no) — are not failures; transport errors,
// timeouts, injected faults and 5xx are. A caller-side cancellation says
// nothing about the upstream, so it is not observed at all.
func breakerFailure(err error) (failure, observable bool) {
	if err == nil {
		return false, true
	}
	if errors.Is(err, context.Canceled) {
		return false, false
	}
	var ue *UpstreamError
	if errors.As(err, &ue) && ue.Status < http.StatusInternalServerError {
		return false, true
	}
	return true, true
}

// BreakerSource gates a SegmentSource behind a Breaker. Several sources
// may share one Breaker (all broadcasts filling over the same POP→POP
// link share the link's health), which is how the service tier wires it.
type BreakerSource struct {
	Source  SegmentSource
	Breaker *Breaker
}

// FetchPlaylist implements SegmentSource.
func (s *BreakerSource) FetchPlaylist(ctx context.Context) ([]byte, error) {
	if !s.Breaker.Allow() {
		return nil, ErrBreakerOpen
	}
	raw, err := s.Source.FetchPlaylist(ctx)
	if failure, observable := breakerFailure(err); observable {
		s.Breaker.Observe(failure)
	}
	return raw, err
}

// FetchSegment implements SegmentSource.
func (s *BreakerSource) FetchSegment(ctx context.Context, seq int) ([]byte, error) {
	if !s.Breaker.Allow() {
		return nil, ErrBreakerOpen
	}
	data, err := s.Source.FetchSegment(ctx, seq)
	if failure, observable := breakerFailure(err); observable {
		s.Breaker.Observe(failure)
	}
	return data, err
}
