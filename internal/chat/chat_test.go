package chat

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startChat(t *testing.T, roomID string, cfg RoomConfig) (*Server, *httptest.Server, *Room) {
	t.Helper()
	s := NewServer()
	room := s.Room(roomID, cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		room.Close()
	})
	return s, hs, room
}

func wsBase(hs *httptest.Server) string {
	return "ws" + strings.TrimPrefix(hs.URL, "http")
}

func TestMessagesArriveEvenWithChatOff(t *testing.T) {
	_, hs, _ := startChat(t, "b1", RoomConfig{
		Chatters: 20, MsgPerChatterSec: 5, AvatarFrac: 0.7, Seed: 1,
	})
	c, err := Join(ClientConfig{
		ChatURL:       wsBase(hs) + "/chat/b1",
		AvatarBaseURL: hs.URL,
		DisplayChat:   false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.After(5 * time.Second)
	for {
		st := c.Stats()
		if st.MessagesReceived >= 5 {
			if st.AvatarDownloads != 0 {
				t.Errorf("chat off but %d avatar downloads", st.AvatarDownloads)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("only %d messages in 5s", st.MessagesReceived)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestChatOnDownloadsAvatarsWithoutCaching(t *testing.T) {
	_, hs, _ := startChat(t, "b2", RoomConfig{
		Chatters: 3, MsgPerChatterSec: 20, AvatarFrac: 1.0, Seed: 2,
	})
	c, err := Join(ClientConfig{
		ChatURL:       wsBase(hs) + "/chat/b2",
		AvatarBaseURL: hs.URL,
		DisplayChat:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.After(8 * time.Second)
	for {
		st := c.Stats()
		// With only 3 chatters and many messages, duplicates are certain.
		if st.AvatarDownloads >= 10 {
			if st.DuplicateAvatarDownloads == 0 {
				t.Error("no duplicate downloads despite no cache")
			}
			if st.AvatarBytes < int64(st.AvatarDownloads)*10_000 {
				t.Errorf("avatar bytes %d too small for %d downloads", st.AvatarBytes, st.AvatarDownloads)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("only %d avatar downloads in 8s", st.AvatarDownloads)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestChatTrafficMuchHigherWhenOn(t *testing.T) {
	// The §5.1 experiment: aggregate rate with chat on dwarfs chat off.
	cfg := RoomConfig{Chatters: 30, MsgPerChatterSec: 2, AvatarFrac: 0.7, Seed: 3}
	_, hsOff, _ := startChat(t, "b3", cfg)
	off, err := Join(ClientConfig{ChatURL: wsBase(hsOff) + "/chat/b3", AvatarBaseURL: hsOff.URL, DisplayChat: false})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	_, hsOn, _ := startChat(t, "b4", cfg)
	on, err := Join(ClientConfig{ChatURL: wsBase(hsOn) + "/chat/b4", AvatarBaseURL: hsOn.URL, DisplayChat: true})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()

	time.Sleep(3 * time.Second)
	offBytes := off.Stats().WSBytes + off.Stats().AvatarBytes
	onBytes := on.Stats().WSBytes + on.Stats().AvatarBytes
	if onBytes < 5*offBytes {
		t.Errorf("chat-on traffic %d not >> chat-off %d", onBytes, offBytes)
	}
}

func TestChatFullBlocksLateSenders(t *testing.T) {
	_, hs, room := startChat(t, "b5", RoomConfig{JoinCap: 1, Seed: 4})
	// First member can send.
	c1, err := Join(ClientConfig{ChatURL: wsBase(hs) + "/chat/b5", AvatarBaseURL: hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Second member joins a full chat: its messages are dropped.
	c2, err := Join(ClientConfig{ChatURL: wsBase(hs) + "/chat/b5", AvatarBaseURL: hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitMembers(t, room, 2)
	if err := c2.Send("should be dropped"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if got := c1.Stats().MessagesReceived; got != 0 {
		t.Errorf("full-chat message leaked: receiver got %d", got)
	}
	if err := c1.Send("allowed"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for c2.Stats().MessagesReceived < 1 {
		select {
		case <-deadline:
			t.Fatal("allowed sender's message never arrived")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func waitMembers(t *testing.T, room *Room, n int) {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for room.Members() < n {
		select {
		case <-deadline:
			t.Fatalf("room never reached %d members", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestAvatarDeterministicSize(t *testing.T) {
	s := NewServer()
	hs := httptest.NewServer(s)
	defer hs.Close()
	get := func() int64 {
		resp, err := hs.Client().Get(hs.URL + "/avatars/user0001.jpg")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		n := int64(0)
		buf := make([]byte, 32<<10)
		for {
			m, err := resp.Body.Read(buf)
			n += int64(m)
			if err != nil {
				break
			}
		}
		return n
	}
	a, b := get(), get()
	if a != b {
		t.Errorf("avatar size not deterministic: %d vs %d", a, b)
	}
	if a < 15*1024 || a > 80*1024 {
		t.Errorf("avatar size %d outside [15KB, 80KB]", a)
	}
}

func TestRoomConfigForViewers(t *testing.T) {
	small := RoomConfigForViewers(8, 1)
	if small.Chatters != 2 {
		t.Errorf("8 viewers -> %d chatters, want 2", small.Chatters)
	}
	big := RoomConfigForViewers(10_000, 1)
	if big.Chatters != DefaultJoinCap {
		t.Errorf("huge audience -> %d chatters, want cap %d", big.Chatters, DefaultJoinCap)
	}
}

func TestUnknownRoom404(t *testing.T) {
	s := NewServer()
	hs := httptest.NewServer(s)
	defer hs.Close()
	if _, err := Join(ClientConfig{ChatURL: wsBase(hs) + "/chat/nope", AvatarBaseURL: hs.URL}); err == nil {
		t.Error("joining unknown room must fail")
	}
}
