package chat

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"periscope/internal/websocket"
)

// discardConn is a zero-cost MemberConn: benchmarks measure the room's
// fan-out machinery, not socket writes.
type discardConn struct {
	writes atomic.Int64
}

func (c *discardConn) WritePrepared(*websocket.PreparedMessage) error {
	c.writes.Add(1)
	return nil
}

func (c *discardConn) Close() error { return nil }

// benchRoom builds a room tuned for fan-out measurement: control loops
// off, sampling off (every member sees every message), eviction off.
func benchRoom(b *testing.B, members int) *Room {
	b.Helper()
	r := NewRoom("bench", RoomConfig{
		JoinCap:          1 << 30,
		FanoutShards:     8,
		SendQueueDepth:   64,
		HopelessDrops:    1 << 30,
		HeartInterval:    -1,
		PresenceInterval: -1,
		VisibilityCap:    -1,
	})
	for i := 0; i < members; i++ {
		if _, ok := r.Join(&discardConn{}); !ok {
			b.Fatal("join refused")
		}
	}
	return r
}

// drain waits until the room's shard queues and member queues are empty:
// every broadcast so far has been delivered (or dropped-oldest).
func drain(r *Room) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		idle := true
		for _, sh := range r.shards {
			if len(sh.ch) > 0 {
				idle = false
				break
			}
		}
		if idle && r.sendQueueDepth() == 0 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkChatRoomBroadcast measures the fully-drained cost of one
// broadcast into an N-member room: publish (marshal + frame once, one
// descriptor to each of K shards — the caller's inline cost is
// O(shards), where the seed implementation performed N synchronous
// socket writes on the caller) plus the sharded delivery of the shared
// *PreparedMessage to every member queue. Allocations are per broadcast
// (~4: marshal + frame), ~0 per member-message. The drain inside the
// timed region keeps per-op cost uniform, so ns/op is the steady-state
// room-wide delivery cost of one message.
func BenchmarkChatRoomBroadcast(b *testing.B) {
	for _, members := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			r := benchRoom(b, members)
			defer r.Close()
			m := Message{User: "user0001", Text: "hello from finland!", SentUnixNano: 1}
			// Warm-up: the first broadcasts pay for member-goroutine
			// start-up; steady state is what the gate tracks.
			for i := 0; i < 3; i++ {
				r.Broadcast(m)
			}
			drain(r)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Broadcast(m)
			}
			drain(r)
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*members), "ns/member-msg")
		})
	}
}

// BenchmarkHeartAggregation measures the tap path: one heart is two
// atomic adds — O(1), no fan-out — while dissemination cost is paid per
// tick. The reported coalesce ratio is taps per delta broadcast.
func BenchmarkHeartAggregation(b *testing.B) {
	r := NewRoom("bench-hearts", RoomConfig{
		JoinCap:          1 << 30,
		FanoutShards:     4,
		HeartInterval:    10 * time.Millisecond,
		PresenceInterval: -1,
	})
	defer r.Close()
	for i := 0; i < 1_000; i++ {
		if _, ok := r.Join(&discardConn{}); !ok {
			b.Fatal("join refused")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Heart(1)
		}
	})
	b.StopTimer()
	if deltas := r.counters.heartDeltas.Load(); deltas > 0 {
		b.ReportMetric(float64(r.counters.heartTaps.Load())/float64(deltas), "taps/delta")
	}
}
