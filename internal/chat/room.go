package chat

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"periscope/internal/websocket"
)

// MemberConn is the connection surface a room needs from a member: the
// shared-frame write used by fan-out and a close for teardown/eviction.
// *websocket.Conn implements it; benchmarks attach in-memory sinks.
type MemberConn interface {
	WritePrepared(*websocket.PreparedMessage) error
	Close() error
}

// Interaction-plane tuning defaults. A zero in RoomConfig means the
// default; a negative interval disables that control loop.
const (
	// DefaultFanoutShardCap caps the per-room fan-out worker count.
	DefaultFanoutShardCap = 8
	// DefaultSendQueueDepth bounds each member's async send queue. Chat
	// messages are small and bursty; 64 slots absorb several seconds of a
	// busy room before drop-oldest fires.
	DefaultSendQueueDepth = 64
	// DefaultHopelessDrops disconnects a member the drop-oldest policy has
	// penalized this many times — it is not consuming at all.
	DefaultHopelessDrops = 1024
	// DefaultHeartInterval is the heart-delta coalescing tick: N taps
	// arriving within one tick leave the room as one counter delta.
	DefaultHeartInterval = 250 * time.Millisecond
	// DefaultPresenceInterval is the viewer-count dissemination tick;
	// join/leave churn within one tick collapses to one presence update.
	DefaultPresenceInterval = time.Second
	// DefaultVisibilityCap is the member count past which each member
	// samples the chat stream instead of seeing every comment (Periscope
	// capped comment visibility in huge rooms): a member in a room of M >
	// cap members sees ~cap/M of the chat messages.
	DefaultVisibilityCap = 1024
	// shardQueueDepth bounds each fan-out shard's descriptor queue.
	shardQueueDepth = 256
)

// defaultFanoutShards picks the per-room worker count: one per core,
// capped — chat rooms are numerous, so each stays small.
func defaultFanoutShards() int {
	k := runtime.GOMAXPROCS(0)
	if k < 1 {
		k = 1
	}
	if k > DefaultFanoutShardCap {
		k = DefaultFanoutShardCap
	}
	return k
}

// roomCounters are one room's cumulative interaction-plane metrics. They
// fold into the server aggregate when the room closes, so server-level
// totals are monotonic across room churn.
type roomCounters struct {
	membersJoined   atomic.Int64 // total joins (not current members)
	messagesIn      atomic.Int64 // chat messages accepted into the room
	messagesOut     atomic.Int64 // per-member queue enqueues
	heartTaps       atomic.Int64 // individual heart taps received
	heartDeltas     atomic.Int64 // coalesced delta messages broadcast
	presenceUpdates atomic.Int64 // presence messages broadcast
	drops           atomic.Int64 // drop-oldest evictions from member queues
	hopeless        atomic.Int64 // members disconnected for never draining
	sampledOut      atomic.Int64 // deliveries skipped by visibility sampling
}

func (c *roomCounters) addTo(st *Stats) {
	st.MembersJoined += c.membersJoined.Load()
	st.MessagesIn += c.messagesIn.Load()
	st.MessagesOut += c.messagesOut.Load()
	st.HeartTaps += c.heartTaps.Load()
	st.HeartDeltas += c.heartDeltas.Load()
	st.PresenceUpdates += c.presenceUpdates.Load()
	st.Drops += c.drops.Load()
	st.HopelessDisconnects += c.hopeless.Load()
	st.SampledOut += c.sampledOut.Load()
}

// member is one attached client: messages are enqueued on a bounded
// channel and written by a dedicated goroutine, so one slow WebSocket
// never head-of-line-blocks its room.
type member struct {
	conn  MemberConn
	shard *chatShard
	ch    chan *websocket.PreparedMessage
	quit  chan struct{}
	once  sync.Once
	// salt drives per-member visibility sampling in huge rooms.
	salt uint32
	// canSend is false for members who joined a full chat.
	canSend bool
	// dropped counts drop-oldest penalties; owned by the shard's delivery
	// path (guarded by shard.mu).
	dropped int
}

// enqueue offers a message without ever blocking; when the queue is full
// the oldest entry is dropped to make room. Reports whether anything was
// dropped. Chat frames are GC-managed, so dropped slots need no release.
func (m *member) enqueue(pm *websocket.PreparedMessage) bool {
	select {
	case m.ch <- pm:
		return false
	default:
	}
	select {
	case <-m.ch:
	default:
	}
	select {
	case m.ch <- pm:
	default:
	}
	return true
}

// stop wakes the sender goroutine for shutdown; idempotent.
func (m *member) stop() {
	m.once.Do(func() { close(m.quit) })
}

// run drains the queue onto the member's connection. A write error closes
// the connection; the server's read loop then leaves the room.
func (m *member) run() {
	for {
		select {
		case <-m.quit:
			return
		case pm := <-m.ch:
			if m.conn.WritePrepared(pm) != nil {
				m.conn.Close()
				return
			}
		}
	}
}

// roomMsg is the per-shard fan-out descriptor: the broadcaster marshals
// and frames the message once and publishes one of these to every shard.
type roomMsg struct {
	pm *websocket.PreparedMessage
	// seq is the room-wide message sequence, mixed with each member's salt
	// for visibility sampling.
	seq uint64
	// thresh is the 16-bit visibility threshold: a member sees the message
	// iff sampleKey(seq, salt)&0xffff < thresh. sampleAll delivers to
	// everyone (control messages, small rooms).
	thresh uint32
}

const sampleAll = 1 << 16

// sampleKey mixes the message sequence with a member's salt into a
// uniform 32-bit key (splitmix-style finalizer).
func sampleKey(seq uint64, salt uint32) uint32 {
	x := seq*0x9E3779B97F4A7C15 + uint64(salt)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return uint32(x)
}

// chatShard owns a disjoint subset of a room's members; a dedicated
// worker delivers descriptors from ch, so K shards spread per-member
// enqueue work across K cores.
type chatShard struct {
	r    *Room
	ch   chan roomMsg
	quit chan struct{}
	// nmembers mirrors len(members) so the broadcaster skips empty shards
	// without taking mu.
	nmembers atomic.Int32

	mu      sync.Mutex
	members []*member
	stopped bool
}

// attach registers m; reports false when the shard has stopped.
func (sh *chatShard) attach(m *member) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped {
		return false
	}
	sh.members = append(sh.members, m)
	sh.nmembers.Store(int32(len(sh.members)))
	return true
}

// remove detaches m, reporting whether it was still attached — the shard
// list is the single arbiter between a Leave and a concurrent hopeless
// eviction, so gauges decrement exactly once.
func (sh *chatShard) remove(m *member) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, w := range sh.members {
		if w == m {
			last := len(sh.members) - 1
			sh.members[i] = sh.members[last]
			sh.members[last] = nil
			sh.members = sh.members[:last]
			sh.nmembers.Store(int32(len(sh.members)))
			return true
		}
	}
	return false
}

// publish hands one descriptor to the shard worker, blocking only on
// worker backpressure (bounded queue), never on any member socket.
func (sh *chatShard) publish(m roomMsg) {
	select {
	case sh.ch <- m:
	case <-sh.quit:
	}
}

// run is the shard worker loop.
func (sh *chatShard) run() {
	for {
		select {
		case <-sh.quit:
			return
		case m := <-sh.ch:
			sh.deliver(m)
		}
	}
}

// deliver fans one message out to this shard's members: visibility
// sampling, drop-oldest enqueue, hopeless eviction.
func (sh *chatShard) deliver(m roomMsg) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < len(sh.members); i++ {
		v := sh.members[i]
		if m.thresh < sampleAll && sampleKey(m.seq, v.salt)&0xffff >= m.thresh {
			sh.r.counters.sampledOut.Add(1)
			continue
		}
		sh.r.counters.messagesOut.Add(1)
		if v.enqueue(m.pm) {
			v.dropped++
			sh.r.counters.drops.Add(1)
			if v.dropped >= sh.r.cfg.HopelessDrops {
				// Hopeless consumer: evict exactly once — remove from the
				// shard so no later message can re-evict, then close.
				last := len(sh.members) - 1
				sh.members[i] = sh.members[last]
				sh.members[last] = nil
				sh.members = sh.members[:last]
				sh.nmembers.Store(int32(len(sh.members)))
				i--
				v.conn.Close()
				v.stop()
				sh.r.forget(v.conn)
				sh.r.nmembers.Add(-1)
				sh.r.presenceDirty.Store(true)
				sh.r.counters.hopeless.Add(1)
			}
		}
	}
}

// queueDepth sums the members' queued messages (snapshot gauge).
func (sh *chatShard) queueDepth() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := 0
	for _, m := range sh.members {
		n += len(m.ch)
	}
	return n
}

// stopShard detaches, stops, and disconnects every member, then stops the
// worker.
func (sh *chatShard) stopShard() {
	sh.mu.Lock()
	sh.stopped = true
	members := sh.members
	sh.members = nil
	sh.nmembers.Store(0)
	sh.mu.Unlock()
	close(sh.quit)
	for _, m := range members {
		m.stop()
		m.conn.Close()
	}
}

// Room is one broadcast's interaction plane: sharded chat fan-out with
// bounded per-member queues, server-side heart aggregation, and jittered
// presence dissemination. Simulated chatters generate traffic; real
// clients join over WebSocket.
type Room struct {
	ID  string
	cfg RoomConfig

	shards []*chatShard
	seq    atomic.Uint64
	// nmembers is the current-member gauge (distinct from counters.
	// membersJoined, the cumulative join count).
	nmembers atomic.Int32
	// pendingHearts accumulates taps between delta ticks — the tap path is
	// one atomic add, never a fan-out.
	pendingHearts atomic.Int64
	presenceDirty atomic.Bool
	// ending marks a room whose broadcast has ended but whose close is
	// deferred past the CDN linger; a relaunch during the linger clears it,
	// cancelling the stale deferred close.
	ending   atomic.Bool
	counters roomCounters

	mu      sync.Mutex
	byConn  map[MemberConn]*member
	joined  int
	next    int // round-robin attach cursor
	stopped bool
	stopCh  chan struct{}
	saltRng *rand.Rand
}

// NewRoom creates a room, starts its fan-out workers and control loop,
// and starts the simulated chatter loop if the config has any chatters.
func NewRoom(id string, cfg RoomConfig) *Room {
	if cfg.FanoutShards <= 0 {
		cfg.FanoutShards = defaultFanoutShards()
	}
	if cfg.SendQueueDepth <= 0 {
		cfg.SendQueueDepth = DefaultSendQueueDepth
	}
	if cfg.HopelessDrops <= 0 {
		cfg.HopelessDrops = DefaultHopelessDrops
	}
	if cfg.HeartInterval == 0 {
		cfg.HeartInterval = DefaultHeartInterval
	}
	if cfg.PresenceInterval == 0 {
		cfg.PresenceInterval = DefaultPresenceInterval
	}
	if cfg.VisibilityCap == 0 {
		cfg.VisibilityCap = DefaultVisibilityCap
	}
	if cfg.JoinCap == 0 {
		cfg.JoinCap = DefaultJoinCap
	}
	r := &Room{
		ID:      id,
		cfg:     cfg,
		byConn:  map[MemberConn]*member{},
		stopCh:  make(chan struct{}),
		saltRng: rand.New(rand.NewSource(cfg.Seed ^ 0x6a09e667)),
	}
	for i := 0; i < cfg.FanoutShards; i++ {
		sh := &chatShard{r: r, ch: make(chan roomMsg, shardQueueDepth), quit: make(chan struct{})}
		r.shards = append(r.shards, sh)
		go sh.run()
	}
	if cfg.HeartInterval > 0 || cfg.PresenceInterval > 0 {
		go r.controlLoop()
	}
	if cfg.Chatters > 0 && cfg.MsgPerChatterSec > 0 {
		go r.generate()
	}
	return r
}

// generate emits simulated chat messages at the aggregate room rate.
func (r *Room) generate() {
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	rate := float64(r.cfg.Chatters) * r.cfg.MsgPerChatterSec
	if rate <= 0 {
		return
	}
	for {
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if wait > 5*time.Second {
			wait = 5 * time.Second
		}
		select {
		case <-r.stopCh:
			return
		case <-time.After(wait):
		}
		user := fmt.Sprintf("user%04d", rng.Intn(r.cfg.Chatters))
		m := Message{
			User:         user,
			Text:         syntheticText(rng),
			SentUnixNano: time.Now().UnixNano(),
		}
		if rng.Float64() < r.cfg.AvatarFrac {
			m.AvatarURL = "/avatars/" + user + ".jpg"
		}
		r.Broadcast(m)
	}
}

// controlLoop runs the room's periodic dissemination: heart counter
// deltas and presence updates, each on its own jittered tick so rooms
// (and their clients' radios) do not beat in phase.
func (r *Room) controlLoop() {
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ 0x5eaf00d))
	jitter := func(d time.Duration) time.Duration {
		// ±20% uniform jitter around the base interval.
		return d + time.Duration((rng.Float64()-0.5)*0.4*float64(d))
	}
	var heartC, presC <-chan time.Time
	var heartT, presT *time.Timer
	if r.cfg.HeartInterval > 0 {
		heartT = time.NewTimer(jitter(r.cfg.HeartInterval))
		defer heartT.Stop()
		heartC = heartT.C
	}
	if r.cfg.PresenceInterval > 0 {
		presT = time.NewTimer(jitter(r.cfg.PresenceInterval))
		defer presT.Stop()
		presC = presT.C
	}
	for {
		select {
		case <-r.stopCh:
			return
		case <-heartC:
			r.flushHearts()
			heartT.Reset(jitter(r.cfg.HeartInterval))
		case <-presC:
			if r.presenceDirty.Swap(false) {
				r.counters.presenceUpdates.Add(1)
				r.publish(Message{
					Kind:         KindPresence,
					Members:      r.Members(),
					Joined:       r.Joined(),
					SentUnixNano: time.Now().UnixNano(),
				}, false)
			}
			presT.Reset(jitter(r.cfg.PresenceInterval))
		}
	}
}

// flushHearts broadcasts one coalesced delta for the taps accumulated
// since the last tick — fan-out cost is O(ticks), not O(taps).
func (r *Room) flushHearts() {
	n := r.pendingHearts.Swap(0)
	if n <= 0 {
		return
	}
	r.counters.heartDeltas.Add(1)
	r.publish(Message{Kind: KindHeartDelta, Count: int(n), SentUnixNano: time.Now().UnixNano()}, false)
}

// Heart records n heart taps (n<=0 counts as one). Taps are aggregated
// server-side and leave the room as periodic counter deltas.
func (r *Room) Heart(n int) {
	if n <= 0 {
		n = 1
	}
	r.counters.heartTaps.Add(int64(n))
	r.pendingHearts.Add(int64(n))
}

// Broadcast sends a chat message to the room's members (subject to
// visibility sampling in huge rooms). Control kinds pass through
// unsampled.
func (r *Room) Broadcast(m Message) {
	chatKind := m.Kind == "" || m.Kind == KindChat
	if chatKind {
		r.counters.messagesIn.Add(1)
	}
	r.publish(m, chatKind)
}

// publish marshals and frames the message once, then hands one descriptor
// to each non-empty shard. The broadcaster's cost is O(shards), not
// O(members).
func (r *Room) publish(m Message, sampled bool) {
	if r.nmembers.Load() == 0 {
		return
	}
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	msg := roomMsg{
		pm:     websocket.PrepareMessage(websocket.OpText, data),
		seq:    r.seq.Add(1),
		thresh: sampleAll,
	}
	if sampled {
		if n, cap := int(r.nmembers.Load()), r.cfg.VisibilityCap; cap > 0 && n > cap {
			msg.thresh = uint32((uint64(cap) << 16) / uint64(n))
			if msg.thresh == 0 {
				msg.thresh = 1
			}
		}
	}
	for _, sh := range r.shards {
		if sh.nmembers.Load() == 0 {
			continue
		}
		sh.publish(msg)
	}
}

// Join attaches a connection to the room. canSend is false once the room
// is full — late joiners only listen (they may still heart). ok is false
// when the room has closed; the caller owns closing the connection then.
func (r *Room) Join(c MemberConn) (canSend, ok bool) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return false, false
	}
	r.joined++
	canSend = r.joined <= r.cfg.JoinCap
	m := &member{
		conn:    c,
		ch:      make(chan *websocket.PreparedMessage, r.cfg.SendQueueDepth),
		quit:    make(chan struct{}),
		salt:    r.saltRng.Uint32(),
		canSend: canSend,
	}
	sh := r.shards[r.next%len(r.shards)]
	r.next++
	m.shard = sh
	r.byConn[c] = m
	r.mu.Unlock()
	if !sh.attach(m) {
		// The shard stopped between the checks; undo the registration.
		r.forget(c)
		return false, false
	}
	r.nmembers.Add(1)
	r.counters.membersJoined.Add(1)
	r.presenceDirty.Store(true)
	go m.run()
	return canSend, true
}

// Leave detaches a connection. It is a no-op when the delivery path
// already evicted the member as hopeless.
func (r *Room) Leave(c MemberConn) {
	r.mu.Lock()
	m := r.byConn[c]
	delete(r.byConn, c)
	r.mu.Unlock()
	if m == nil {
		return
	}
	if m.shard.remove(m) {
		r.nmembers.Add(-1)
		r.presenceDirty.Store(true)
	}
	m.stop()
}

// forget drops the conn→member registration without touching the shard
// (used by the delivery path, which edits its own member list).
func (r *Room) forget(c MemberConn) {
	r.mu.Lock()
	delete(r.byConn, c)
	r.mu.Unlock()
}

// Members reports the current number of attached clients.
func (r *Room) Members() int {
	return int(r.nmembers.Load())
}

// Joined reports the cumulative join count (the chat-full cap compares
// against this, not current membership).
func (r *Room) Joined() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.joined
}

// sendQueueDepth sums queued messages across all members (gauge).
func (r *Room) sendQueueDepth() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.queueDepth()
	}
	return n
}

// addTo folds the room's counters (and gauges) into st.
func (r *Room) addTo(st *Stats) {
	r.counters.addTo(st)
	st.Members += r.Members()
	st.SendQueueDepth += r.sendQueueDepth()
}

// Close stops the chatter and control loops, then stops and disconnects
// every member. Idempotent.
func (r *Room) Close() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.stopCh)
	r.byConn = map[MemberConn]*member{}
	r.mu.Unlock()
	for _, sh := range r.shards {
		sh.stopShard()
	}
	r.nmembers.Store(0)
}
