package chat

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"periscope/internal/websocket"
)

// ClientConfig configures the viewer-side chat client.
type ClientConfig struct {
	// ChatURL is the ws:// URL of the room.
	ChatURL string
	// HeartsURL is the http:// tap endpoint for this room (optional; only
	// needed to send hearts over HTTP — Heart falls back to the WebSocket
	// when unset).
	HeartsURL string
	// AvatarBaseURL is the http:// base for profile pictures.
	AvatarBaseURL string
	// DisplayChat mirrors the app's chat toggle. When false, JSON messages
	// still arrive over the WebSocket (as the paper observed) but no
	// avatars are downloaded. When true, every displayed message with an
	// avatar URL triggers a download — uncached.
	DisplayChat bool
	// Dial optionally routes the WebSocket through a shaped connection.
	Dial func(network, addr string) (net.Conn, error)
	// HTTPClient fetches avatars (may be bandwidth-shaped).
	HTTPClient *http.Client
}

// ClientStats summarises the chat client's traffic.
type ClientStats struct {
	MessagesReceived int
	MessagesShown    int
	AvatarDownloads  int
	AvatarBytes      int64
	WSBytes          int64
	// DuplicateAvatarDownloads counts re-downloads of a user's picture —
	// direct evidence of the missing cache.
	DuplicateAvatarDownloads int
	// HeartDeltas / HeartsSeen count coalesced heart messages received and
	// the total hearts they carried — HeartsSeen/HeartDeltas is the
	// server-side coalescing ratio as observed from this client.
	HeartDeltas int
	HeartsSeen  int
	// PresenceUpdates counts viewer-count messages; LastMembers is the
	// most recent reported room size.
	PresenceUpdates int
	LastMembers     int
	// MeanChatLatency is the mean sender→receiver delay of chat messages,
	// computed from SentUnixNano against this client's clock (both sides
	// share a clock in the testbed).
	MeanChatLatency time.Duration
}

// Client attaches to a chat room and mimics the app's traffic behaviour.
type Client struct {
	cfg  ClientConfig
	conn *websocket.Conn
	http *http.Client

	mu         sync.Mutex
	stats      ClientStats
	latencySum time.Duration
	latencyN   int
	seen       map[string]bool
	done       chan struct{}
}

// Join connects to the room and starts consuming messages.
func Join(cfg ClientConfig) (*Client, error) {
	conn, err := websocket.Dial(cfg.ChatURL, cfg.Dial)
	if err != nil {
		return nil, err
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{cfg: cfg, conn: conn, http: hc, seen: map[string]bool{}, done: make(chan struct{})}
	go c.loop()
	return c, nil
}

func (c *Client) loop() {
	defer close(c.done)
	for {
		_, data, err := c.conn.ReadMessage()
		if err != nil {
			return
		}
		var m Message
		if json.Unmarshal(data, &m) != nil {
			continue
		}
		now := time.Now().UnixNano()
		c.mu.Lock()
		display := false
		switch m.Kind {
		case KindHeartDelta:
			c.stats.HeartDeltas++
			c.stats.HeartsSeen += m.Count
		case KindPresence:
			c.stats.PresenceUpdates++
			c.stats.LastMembers = m.Members
		case KindChat:
			c.stats.MessagesReceived++
			if m.SentUnixNano > 0 && now >= m.SentUnixNano {
				c.latencySum += time.Duration(now - m.SentUnixNano)
				c.latencyN++
			}
			display = c.cfg.DisplayChat
			if display {
				c.stats.MessagesShown++
			}
		}
		c.stats.WSBytes = c.conn.BytesRead.Load()
		c.mu.Unlock()
		if display && m.AvatarURL != "" {
			c.fetchAvatar(m.AvatarURL, m.User)
		}
	}
}

// fetchAvatar downloads a profile picture without any caching.
func (c *Client) fetchAvatar(url, user string) {
	resp, err := c.http.Get(c.cfg.AvatarBaseURL + url)
	if err != nil {
		return
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.mu.Lock()
	c.stats.AvatarDownloads++
	c.stats.AvatarBytes += n
	if c.seen[user] {
		c.stats.DuplicateAvatarDownloads++
	}
	c.seen[user] = true
	c.mu.Unlock()
}

// Send posts a chat message (ignored by the server if the room was full
// when this client joined).
func (c *Client) Send(text string) error {
	m := Message{User: "measurement-client", Text: text, SentUnixNano: time.Now().UnixNano()}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return c.conn.WriteMessage(websocket.OpText, data)
}

// Heart taps n hearts (n<=0 taps one): POST to HeartsURL when configured,
// otherwise a heart message on the WebSocket. Either way the server
// coalesces — tapping never causes per-tap fan-out.
func (c *Client) Heart(n int) error {
	if n <= 0 {
		n = 1
	}
	if c.cfg.HeartsURL != "" {
		resp, err := c.http.Post(c.cfg.HeartsURL+"?n="+strconv.Itoa(n), "text/plain", nil)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	data, err := json.Marshal(Message{Kind: KindHeart, Count: n})
	if err != nil {
		return err
	}
	return c.conn.WriteMessage(websocket.OpText, data)
}

// Stats returns a snapshot of the traffic counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.WSBytes = c.conn.BytesRead.Load()
	if c.latencyN > 0 {
		s.MeanChatLatency = c.latencySum / time.Duration(c.latencyN)
	}
	return s
}

// Close detaches from the room.
func (c *Client) Close() error {
	err := c.conn.Close()
	select {
	case <-c.done:
	case <-time.After(time.Second):
	}
	return err
}
