package chat

import (
	"testing"

	"periscope/internal/leakcheck"
)

// TestMain enforces the runtime half of the gostop contract: room
// shards, control loops, generators and member writers must all exit
// when their room closes.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
