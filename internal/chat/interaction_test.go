package chat

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"periscope/internal/websocket"
)

// sinkConn is an in-memory MemberConn that records delivered payloads.
type sinkConn struct {
	mu       sync.Mutex
	payloads [][]byte
	closed   bool
}

func (c *sinkConn) WritePrepared(pm *websocket.PreparedMessage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return websocket.ErrClosed
	}
	c.payloads = append(c.payloads, pm.Payload())
	return nil
}

func (c *sinkConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func (c *sinkConn) received() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.payloads)
}

func (c *sinkConn) messages(t *testing.T) []Message {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Message, 0, len(c.payloads))
	for _, p := range c.payloads {
		var m Message
		if err := json.Unmarshal(p, &m); err != nil {
			t.Fatalf("bad payload %q: %v", p, err)
		}
		out = append(out, m)
	}
	return out
}

// stuckConn never consumes a write: its member's queue fills, drop-oldest
// fires on every broadcast, and the room must eventually evict it.
type stuckConn struct {
	unblock chan struct{}
	closed  atomic.Bool
}

func (c *stuckConn) WritePrepared(*websocket.PreparedMessage) error {
	<-c.unblock
	return websocket.ErrClosed
}

func (c *stuckConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.unblock)
	}
	return nil
}

// quietRoom builds a room with the control loops disabled, so tests can
// count exactly the messages they broadcast.
func quietRoom(cfg RoomConfig) *Room {
	cfg.HeartInterval = -1
	cfg.PresenceInterval = -1
	return NewRoom("test", cfg)
}

// waitIdle waits until the room's fan-out has fully drained: every
// broadcast so far is accounted as either delivered or sampled out.
func waitIdle(t *testing.T, r *Room) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if r.sendQueueDepth() == 0 {
			idle := true
			for _, sh := range r.shards {
				if len(sh.ch) > 0 {
					idle = false
					break
				}
			}
			if idle {
				// One settle round: a shard may be mid-deliver.
				time.Sleep(10 * time.Millisecond)
				if r.sendQueueDepth() == 0 {
					return
				}
			}
		}
		select {
		case <-deadline:
			t.Fatal("room fan-out never drained")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestConcurrentBroadcastLeave is the satellite-2 regression: the seed
// Room.Broadcast mutated r.conns per failed conn while other broadcasts
// iterated a stale snapshot. The sharded room must survive heavy
// concurrent Broadcast/Leave/Join without losing its member accounting.
func TestConcurrentBroadcastLeave(t *testing.T) {
	r := quietRoom(RoomConfig{JoinCap: 1 << 20, FanoutShards: 4})
	defer r.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Broadcast(Message{User: "u", Text: fmt.Sprintf("m%d", i)})
		}
	}()
	const churners = 4
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				conns := make([]*sinkConn, 8)
				for j := range conns {
					conns[j] = &sinkConn{}
					if _, ok := r.Join(conns[j]); !ok {
						t.Error("join refused on open room")
						return
					}
				}
				for _, c := range conns {
					r.Leave(c)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := r.Members(); got != 0 {
		t.Fatalf("members = %d after all left, want 0", got)
	}
	if joined := r.counters.membersJoined.Load(); joined != churners*40*8 {
		t.Fatalf("membersJoined = %d, want %d", joined, churners*40*8)
	}
}

// TestMemberChurnDuringShardedBroadcast keeps a persistent member and
// verifies it receives every message even while other members churn
// through the shards mid-broadcast.
func TestMemberChurnDuringShardedBroadcast(t *testing.T) {
	r := quietRoom(RoomConfig{JoinCap: 1 << 20, FanoutShards: 4, SendQueueDepth: 4096})
	defer r.Close()
	keeper := &sinkConn{}
	if _, ok := r.Join(keeper); !ok {
		t.Fatal("join refused")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := &sinkConn{}
				if _, ok := r.Join(c); ok {
					r.Leave(c)
				}
			}
		}()
	}
	const msgs = 500
	for i := 0; i < msgs; i++ {
		r.Broadcast(Message{User: "u", Text: fmt.Sprintf("m%d", i)})
	}
	close(stop)
	wg.Wait()
	waitIdle(t, r)
	if got := keeper.received(); got != msgs {
		t.Fatalf("persistent member received %d of %d messages", got, msgs)
	}
	if drops := r.counters.drops.Load(); drops != 0 {
		t.Fatalf("unexpected queue drops: %d", drops)
	}
}

// TestHeartDeltaCoalescing pins the tentpole's heart property: the sum of
// the broadcast deltas equals the taps, and the number of delta messages
// is O(ticks), not O(taps).
func TestHeartDeltaCoalescing(t *testing.T) {
	r := NewRoom("hearts", RoomConfig{
		JoinCap:          10,
		HeartInterval:    20 * time.Millisecond,
		PresenceInterval: -1,
	})
	defer r.Close()
	c := &sinkConn{}
	if _, ok := r.Join(c); !ok {
		t.Fatal("join refused")
	}

	const taps = 10_000
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < taps/8; i++ {
				r.Heart(1)
			}
		}()
	}
	wg.Wait()
	tapWindow := time.Since(start)

	deadline := time.After(5 * time.Second)
	for {
		sum, deltas := 0, 0
		for _, m := range c.messages(t) {
			if m.Kind == KindHeartDelta {
				deltas++
				sum += m.Count
			}
		}
		if sum == taps {
			// 10k taps fit in a handful of 20ms ticks: the member must have
			// seen a number of messages bounded by elapsed ticks, nowhere
			// near the tap count.
			elapsed := tapWindow + time.Since(start) + time.Second
			maxDeltas := int(elapsed/(20*time.Millisecond)) + 2
			if deltas > maxDeltas {
				t.Fatalf("%d heart messages for %d taps (max ~%d ticks): fan-out is not O(ticks)", deltas, taps, maxDeltas)
			}
			if got := r.counters.heartTaps.Load(); got != taps {
				t.Fatalf("heartTaps counter = %d, want %d", got, taps)
			}
			if got := r.counters.heartDeltas.Load(); got != int64(deltas) {
				t.Fatalf("heartDeltas counter = %d, member saw %d", got, deltas)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("delta sum = %d, want %d", sum, taps)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestPresenceDissemination verifies join/leave churn collapses into
// periodic presence updates carrying the member gauge.
func TestPresenceDissemination(t *testing.T) {
	r := NewRoom("presence", RoomConfig{
		JoinCap:          100,
		HeartInterval:    -1,
		PresenceInterval: 20 * time.Millisecond,
	})
	defer r.Close()
	c := &sinkConn{}
	if _, ok := r.Join(c); !ok {
		t.Fatal("join refused")
	}
	others := make([]*sinkConn, 5)
	for i := range others {
		others[i] = &sinkConn{}
		if _, ok := r.Join(others[i]); !ok {
			t.Fatal("join refused")
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		var last *Message
		for _, m := range c.messages(t) {
			if m.Kind == KindPresence {
				mm := m
				last = &mm
			}
		}
		if last != nil && last.Members == 6 && last.Joined == 6 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("no presence update with members=6 (last %+v)", last)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestHopelessMemberDisconnected verifies a member that never drains its
// queue is evicted without stalling delivery to healthy members.
func TestHopelessMemberDisconnected(t *testing.T) {
	r := quietRoom(RoomConfig{
		JoinCap:        10,
		FanoutShards:   1, // both members on one shard: the stuck one must not shield the healthy one
		SendQueueDepth: 4,
		HopelessDrops:  8,
	})
	defer r.Close()
	healthy := &sinkConn{}
	stuck := &stuckConn{unblock: make(chan struct{})}
	if _, ok := r.Join(healthy); !ok {
		t.Fatal("join refused")
	}
	if _, ok := r.Join(stuck); !ok {
		t.Fatal("join refused")
	}

	// Paced sends: the healthy member's consumer keeps up easily, so only
	// the stuck member accumulates drop-oldest penalties.
	const msgs = 50
	for i := 0; i < msgs; i++ {
		r.Broadcast(Message{User: "u", Text: fmt.Sprintf("m%d", i)})
		time.Sleep(2 * time.Millisecond)
	}
	waitIdle(t, r)
	if got := healthy.received(); got != msgs {
		t.Fatalf("healthy member received %d of %d messages behind a stuck peer", got, msgs)
	}
	if !stuck.closed.Load() {
		t.Fatal("stuck member's connection not closed")
	}
	if got := r.counters.hopeless.Load(); got != 1 {
		t.Fatalf("hopeless counter = %d, want 1", got)
	}
	if got := r.Members(); got != 1 {
		t.Fatalf("members = %d after eviction, want 1", got)
	}
	// A later Leave from the server read loop must not double-decrement.
	r.Leave(stuck)
	if got := r.Members(); got != 1 {
		t.Fatalf("members = %d after redundant Leave, want 1", got)
	}
}

// TestVisibilitySampling pins the huge-room capping behaviour: each
// member sees ~cap/members of the chat stream, while control messages
// (heart deltas) reach everyone.
func TestVisibilitySampling(t *testing.T) {
	const members, cap, msgs = 512, 64, 200
	r := quietRoom(RoomConfig{
		JoinCap:        1 << 20,
		VisibilityCap:  cap,
		SendQueueDepth: 1024,
	})
	defer r.Close()
	conns := make([]*sinkConn, members)
	for i := range conns {
		conns[i] = &sinkConn{}
		if _, ok := r.Join(conns[i]); !ok {
			t.Fatal("join refused")
		}
	}
	for i := 0; i < msgs; i++ {
		r.Broadcast(Message{User: "u", Text: fmt.Sprintf("m%d", i)})
	}
	r.flushHearts() // no taps: no-op
	r.Heart(3)
	r.flushHearts() // one unsampled control message
	waitIdle(t, r)

	if drops := r.counters.drops.Load(); drops != 0 {
		t.Fatalf("queue drops (%d) would skew the sampling measurement", drops)
	}
	chatSeen, deltaSeen := 0, 0
	for _, c := range conns {
		for _, m := range c.messages(t) {
			switch m.Kind {
			case KindChat:
				chatSeen++
			case KindHeartDelta:
				deltaSeen++
				if m.Count != 3 {
					t.Fatalf("heart delta count = %d, want 3", m.Count)
				}
			}
		}
	}
	if deltaSeen != members {
		t.Fatalf("heart delta reached %d of %d members: control messages must be unsampled", deltaSeen, members)
	}
	// Expected chat deliveries: msgs × members × (cap/members) = msgs × cap.
	want := msgs * cap
	if chatSeen < want*80/100 || chatSeen > want*120/100 {
		t.Fatalf("sampled deliveries = %d, want ≈%d (cap %d of %d members)", chatSeen, want, cap, members)
	}
	if sampled := r.counters.sampledOut.Load(); sampled != int64(msgs*members-chatSeen) {
		t.Fatalf("sampledOut = %d, delivered = %d, broadcasts = %d: accounting mismatch",
			sampled, chatSeen, msgs*members)
	}
}

// TestRoomCloseRacesJoin drives Server.CloseRoom concurrently with
// WebSocket upgrades: every join either lands in the room (and is then
// disconnected by the close) or is refused — never wedged, never panicking.
func TestRoomCloseRacesJoin(t *testing.T) {
	for i := 0; i < 15; i++ {
		s := NewServer()
		id := fmt.Sprintf("race%d", i)
		s.Room(id, RoomConfig{JoinCap: 1 << 20, HeartInterval: -1, PresenceInterval: -1})
		hs := httptest.NewServer(s)

		var wg sync.WaitGroup
		clients := make([]*Client, 8)
		for j := range clients {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				c, err := Join(ClientConfig{ChatURL: wsBase(hs) + "/chat/" + id})
				if err == nil {
					clients[j] = c
				}
			}(j)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.CloseRoom(id)
		}()
		wg.Wait()
		if room := s.Lookup(id); room != nil {
			t.Fatalf("room %s still registered after CloseRoom", id)
		}
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
		hs.Close()
	}
}

// TestHeartTapHTTP exercises the POST /hearts/{id} endpoint.
func TestHeartTapHTTP(t *testing.T) {
	s, hs, room := startChat(t, "tap", RoomConfig{JoinCap: 10, HeartInterval: -1, PresenceInterval: -1})
	post := func(path string) int {
		resp, err := http.Post(hs.URL+path, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/hearts/tap"); code != http.StatusNoContent {
		t.Fatalf("tap status = %d, want 204", code)
	}
	if code := post("/hearts/tap?n=5"); code != http.StatusNoContent {
		t.Fatalf("multi-tap status = %d, want 204", code)
	}
	if code := post("/hearts/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown-room tap status = %d, want 404", code)
	}
	if code := post("/hearts/tap?n=0"); code != http.StatusBadRequest {
		t.Fatalf("bad-n tap status = %d, want 400", code)
	}
	resp, err := http.Get(hs.URL + "/hearts/tap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET tap status = %d, want 405", resp.StatusCode)
	}
	if got := room.counters.heartTaps.Load(); got != 6 {
		t.Fatalf("heartTaps = %d, want 6", got)
	}
	if st := s.Snapshot(); st.HeartTaps != 6 {
		t.Fatalf("snapshot HeartTaps = %d, want 6", st.HeartTaps)
	}
}

// TestHeartsAllowedWhenChatFull: a member past the join cap cannot chat
// but can still tap hearts (over the WebSocket).
func TestHeartsAllowedWhenChatFull(t *testing.T) {
	_, hs, room := startChat(t, "full", RoomConfig{JoinCap: 1, HeartInterval: -1, PresenceInterval: -1})
	c1, err := Join(ClientConfig{ChatURL: wsBase(hs) + "/chat/full"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Join(ClientConfig{ChatURL: wsBase(hs) + "/chat/full"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitMembers(t, room, 2)
	if err := c2.Heart(7); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for room.counters.heartTaps.Load() < 7 {
		select {
		case <-deadline:
			t.Fatalf("heartTaps = %d, want 7: capped member's hearts dropped", room.counters.heartTaps.Load())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestClientHeartsAndLatency drives the full loop through a real
// WebSocket: HTTP heart taps coalesce into deltas the client counts, and
// chat-message latency is accounted from SentUnixNano.
func TestClientHeartsAndLatency(t *testing.T) {
	_, hs, room := startChat(t, "loop", RoomConfig{
		JoinCap:          10,
		HeartInterval:    20 * time.Millisecond,
		PresenceInterval: 30 * time.Millisecond,
	})
	c, err := Join(ClientConfig{
		ChatURL:   wsBase(hs) + "/chat/loop",
		HeartsURL: hs.URL + "/hearts/loop",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitMembers(t, room, 1)
	for i := 0; i < 10; i++ {
		if err := c.Heart(10); err != nil {
			t.Fatal(err)
		}
	}
	room.Broadcast(Message{User: "u", Text: "hi", SentUnixNano: time.Now().UnixNano()})
	deadline := time.After(5 * time.Second)
	for {
		st := c.Stats()
		if st.HeartsSeen == 100 && st.MessagesReceived >= 1 && st.PresenceUpdates >= 1 {
			if st.HeartDeltas > 20 {
				t.Fatalf("100 taps arrived as %d delta messages: not coalesced", st.HeartDeltas)
			}
			if st.MeanChatLatency <= 0 || st.MeanChatLatency > 5*time.Second {
				t.Fatalf("MeanChatLatency = %v, want (0, 5s]", st.MeanChatLatency)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("stats never converged: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestSnapshotMonotonicAcrossRoomClose is the counter-folding regression:
// closing a room must not lose its cumulative counters.
func TestSnapshotMonotonicAcrossRoomClose(t *testing.T) {
	s := NewServer()
	r := s.Room("mono", RoomConfig{JoinCap: 10, HeartInterval: -1, PresenceInterval: -1})
	c := &sinkConn{}
	if _, ok := r.Join(c); !ok {
		t.Fatal("join refused")
	}
	for i := 0; i < 20; i++ {
		r.Broadcast(Message{User: "u", Text: "x"})
	}
	r.Heart(5)
	waitIdle(t, r)

	before := s.Snapshot()
	if before.Rooms != 1 || before.Members != 1 {
		t.Fatalf("gauges before close: %+v", before)
	}
	if before.MessagesIn != 20 || before.MessagesOut != 20 || before.HeartTaps != 5 {
		t.Fatalf("counters before close: %+v", before)
	}
	s.CloseRoom("mono")
	after := s.Snapshot()
	if after.Rooms != 0 || after.Members != 0 {
		t.Fatalf("gauges after close: %+v", after)
	}
	if after.RoomsClosed != 1 || after.RoomsOpened != 1 {
		t.Fatalf("room lifecycle counters after close: %+v", after)
	}
	if after.MessagesIn < before.MessagesIn || after.MessagesOut < before.MessagesOut ||
		after.HeartTaps < before.HeartTaps || after.MembersJoined < before.MembersJoined {
		t.Fatalf("cumulative counters dipped across close:\nbefore %+v\nafter  %+v", before, after)
	}
}
