// Package chat implements the Periscope interaction plane: WebSocket
// chat rooms attached to broadcasts (§3), JSON-encoded chat messages
// that arrive even when the chat UI is off, a join cap after which "new
// joining users cannot send messages" (chat full), heart taps aggregated
// server-side into periodic counter deltas, presence (viewer-count)
// dissemination on a jittered tick, and an Amazon-S3-like avatar server.
//
// The QoE study found the chat feature dominates traffic and power when
// enabled: the app downloads chatting users' profile pictures next to
// their messages, does not cache them, and in one experiment the aggregate
// data rate rose from ~500 kbps to 3.5 Mbps (§5.1, §5.3). The client here
// reproduces exactly that behaviour: avatars are fetched per message
// displayed, with no cache.
//
// Fan-out mirrors the media hub: each room shards its members across K
// workers, every member has a bounded async send queue with a drop-oldest
// policy, and members that never drain are disconnected — one slow
// WebSocket cannot head-of-line-block a room. In huge rooms each member
// samples the chat stream (per-viewer comment-visibility capping) so what
// a member sees stays bounded as the room grows.
package chat

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"periscope/internal/websocket"
)

// Message kinds as carried in the "kind" field. An absent kind is a chat
// message (the seed-era wire format).
const (
	// KindChat is a user-visible chat message.
	KindChat = ""
	// KindHeart is a single client→server heart tap (WebSocket
	// alternative to POST /hearts/{id}).
	KindHeart = "heart"
	// KindHeartDelta is the server's coalesced heart counter delta:
	// Count hearts were tapped since the previous delta.
	KindHeartDelta = "heart_delta"
	// KindPresence is the server's periodic viewer-count update.
	KindPresence = "presence"
)

// Message is one interaction-plane message as carried on the WebSocket.
type Message struct {
	Kind      string `json:"kind,omitempty"`
	User      string `json:"user,omitempty"`
	Text      string `json:"text,omitempty"`
	AvatarURL string `json:"avatar_url,omitempty"`
	// Count is the coalesced heart count on a heart_delta (or the tap
	// multiplier on an inbound heart).
	Count int `json:"count,omitempty"`
	// Members/Joined carry the room gauge on a presence update.
	Members int `json:"members,omitempty"`
	Joined  int `json:"joined,omitempty"`
	// SentUnixNano is the sender's clock in Unix nanoseconds — the unit is
	// explicit in both the field name and the JSON tag, matching the
	// client-side latency accounting.
	SentUnixNano int64 `json:"sent_unix_nano,omitempty"`
}

// DefaultJoinCap is the number of joined users after which the chat
// becomes full.
const DefaultJoinCap = 100

// RoomConfig tunes a chat room: the simulated chatter workload plus the
// interaction-plane machinery (fan-out sharding, queue bounds, heart and
// presence ticks, visibility capping). Zero values mean defaults; a
// negative interval disables that control loop.
type RoomConfig struct {
	// Chatters is the number of simulated active chatting users.
	Chatters int
	// MsgPerChatterSec is each chatter's message rate.
	MsgPerChatterSec float64
	// AvatarFrac is the fraction of chatters with a profile picture.
	AvatarFrac float64
	// JoinCap caps senders (chat full).
	JoinCap int
	Seed    int64

	// FanoutShards is the number of fan-out workers (default: GOMAXPROCS
	// capped at DefaultFanoutShardCap).
	FanoutShards int
	// SendQueueDepth bounds each member's async send queue (drop-oldest
	// beyond it).
	SendQueueDepth int
	// HopelessDrops disconnects a member after this many drop-oldest
	// penalties.
	HopelessDrops int
	// HeartInterval is the heart-delta coalescing tick (negative disables
	// heart dissemination).
	HeartInterval time.Duration
	// PresenceInterval is the viewer-count dissemination tick (negative
	// disables presence updates).
	PresenceInterval time.Duration
	// VisibilityCap is the member count past which members sample the chat
	// stream instead of receiving every message (negative disables
	// sampling).
	VisibilityCap int
}

// RoomConfigForViewers derives chat activity from a broadcast's audience:
// a fixed fraction of viewers chat, capped by the join cap.
func RoomConfigForViewers(viewers int, seed int64) RoomConfig {
	chatters := viewers / 4
	if chatters > DefaultJoinCap {
		chatters = DefaultJoinCap
	}
	return RoomConfig{
		Chatters:         chatters,
		MsgPerChatterSec: 0.05, // one message per chatter every 20 s
		AvatarFrac:       0.7,
		JoinCap:          DefaultJoinCap,
		Seed:             seed,
	}
}

var chatPhrases = []string{
	"hello from finland!", "where is this?", "nice view", "omg", "hi hi hi",
	"what's happening?", "greetings", "love this", "turn around please",
	"how's the weather", "first time here", "this is great",
}

func syntheticText(rng *rand.Rand) string {
	return chatPhrases[rng.Intn(len(chatPhrases))]
}

// Stats is the server-wide interaction-plane snapshot: gauges for the
// current state plus cumulative counters that stay monotonic across room
// close (closed rooms fold into an aggregate).
type Stats struct {
	// Gauges.
	Rooms          int // rooms currently open
	Members        int // members currently attached across rooms
	SendQueueDepth int // messages queued across all member send queues

	// Cumulative counters (monotonic across room close).
	RoomsOpened         int64
	RoomsClosed         int64
	MembersJoined       int64
	MessagesIn          int64
	MessagesOut         int64
	HeartTaps           int64
	HeartDeltas         int64
	PresenceUpdates     int64
	Drops               int64
	HopelessDisconnects int64
	SampledOut          int64
}

// Server hosts chat rooms at /chat/{broadcastID}, heart taps at
// /hearts/{broadcastID}, and profile pictures at /avatars/{user}.jpg.
type Server struct {
	mu    sync.Mutex
	rooms map[string]*Room
	// closed holds the folded counters of every room closed so far, so
	// server-level totals never go backwards when a room dies.
	closed      Stats
	roomsOpened int64
	roomsClosed int64
	// AvatarMinKB/AvatarMaxKB bound the synthetic profile-picture sizes;
	// "the precise effect on traffic depends on … the format and
	// resolution of profile pictures" (§5.1).
	AvatarMinKB int
	AvatarMaxKB int
}

// NewServer creates an empty chat server.
func NewServer() *Server {
	return &Server{rooms: map[string]*Room{}, AvatarMinKB: 15, AvatarMaxKB: 80}
}

// Room returns (creating if needed) the room for a broadcast. Reusing a
// room cancels any pending deferred close: a broadcast relaunched during
// the end linger keeps its room.
func (s *Server) Room(id string, cfg RoomConfig) *Room {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rooms[id]; ok {
		r.ending.Store(false)
		return r
	}
	r := NewRoom(id, cfg)
	s.rooms[id] = r
	s.roomsOpened++
	return r
}

// Lookup returns the room for a broadcast, or nil.
func (s *Server) Lookup(id string) *Room {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rooms[id]
}

// CloseRoom shuts a room down (broadcast ended) and folds its counters
// into the server aggregate.
func (s *Server) CloseRoom(id string) {
	s.mu.Lock()
	r := s.rooms[id]
	delete(s.rooms, id)
	s.mu.Unlock()
	s.closeAndFold(r)
}

// BeginClose marks the room for id as ending and returns it (nil when no
// room exists). The room stays open — members keep chatting while HLS
// viewers drain — until CloseRoomIf finishes the job after the linger.
func (s *Server) BeginClose(id string) *Room {
	s.mu.Lock()
	r := s.rooms[id]
	s.mu.Unlock()
	if r != nil {
		r.ending.Store(true)
	}
	return r
}

// CloseRoomIf closes the room for id only if it is still the given room
// and still marked ending — a broadcast relaunched during the close
// linger reclaims its room (clearing the mark), and a stale deferred
// close must not tear it down.
func (s *Server) CloseRoomIf(id string, want *Room) {
	if want == nil {
		return
	}
	s.mu.Lock()
	r := s.rooms[id]
	if r != want || !r.ending.Load() {
		s.mu.Unlock()
		return
	}
	delete(s.rooms, id)
	s.mu.Unlock()
	s.closeAndFold(r)
}

// Close shuts every room down (service shutdown).
func (s *Server) Close() {
	s.mu.Lock()
	rooms := s.rooms
	s.rooms = map[string]*Room{}
	s.mu.Unlock()
	for _, r := range rooms {
		s.closeAndFold(r)
	}
}

func (s *Server) closeAndFold(r *Room) {
	if r == nil {
		return
	}
	r.Close()
	s.mu.Lock()
	r.counters.addTo(&s.closed)
	s.roomsClosed++
	s.mu.Unlock()
}

// Snapshot sums live rooms and the closed-room aggregate. Cumulative
// counters are monotonic across room close; gauges reflect only open
// rooms.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	st := s.closed
	st.RoomsOpened = s.roomsOpened
	st.RoomsClosed = s.roomsClosed
	rooms := make([]*Room, 0, len(s.rooms))
	for _, r := range s.rooms {
		rooms = append(rooms, r)
	}
	s.mu.Unlock()
	st.Rooms = len(rooms)
	for _, r := range rooms {
		r.addTo(&st)
	}
	return st
}

// ServeHTTP routes chat joins, heart taps, and avatar downloads.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/chat/"):
		id := strings.TrimPrefix(r.URL.Path, "/chat/")
		room := s.Lookup(id)
		if room == nil {
			http.NotFound(w, r)
			return
		}
		conn, err := websocket.Upgrade(w, r)
		if err != nil {
			return
		}
		canSend, ok := room.Join(conn)
		if !ok {
			// The room closed between the lookup and the join.
			conn.Close()
			return
		}
		go s.serveMember(room, conn, canSend)
	case strings.HasPrefix(r.URL.Path, "/hearts/"):
		s.serveHeart(w, r)
	case strings.HasPrefix(r.URL.Path, "/avatars/"):
		s.serveAvatar(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveHeart handles POST /hearts/{broadcastID}?n=N — the tap endpoint.
// The tap path is a counter bump, never a fan-out; deltas leave the room
// on the heart tick.
func (s *Server) serveHeart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/hearts/")
	room := s.Lookup(id)
	if room == nil {
		http.NotFound(w, r)
		return
	}
	n := 1
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	room.Heart(n)
	w.WriteHeader(http.StatusNoContent)
}

// serveMember relays inbound messages from a member until the connection
// drops. Chat messages from late joiners (chat full) are dropped; heart
// taps are accepted from everyone.
func (s *Server) serveMember(room *Room, conn *websocket.Conn, canSend bool) {
	defer func() {
		room.Leave(conn)
		conn.Close()
	}()
	for {
		_, data, err := conn.ReadMessage()
		if err != nil {
			return
		}
		var m Message
		if json.Unmarshal(data, &m) != nil {
			continue
		}
		switch m.Kind {
		case KindHeart:
			room.Heart(m.Count)
		case KindChat:
			if !canSend {
				continue // chat full: messages from late joiners are dropped
			}
			room.Broadcast(m)
		}
	}
}

// serveAvatar returns a deterministic pseudo-JPEG blob for a user. The
// response is cacheable, but the app never caches it (§5.1: "some pictures
// were downloaded multiple times, which indicates that the app does not
// cache them").
func (s *Server) serveAvatar(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/avatars/")
	name = strings.TrimSuffix(name, ".jpg")
	if name == "" {
		http.NotFound(w, r)
		return
	}
	// Deterministic size in [min, max] KB from the user name.
	h := uint64(14695981039346656037)
	for _, c := range name {
		h = (h ^ uint64(c)) * 1099511628211
	}
	kb := s.AvatarMinKB
	if s.AvatarMaxKB > s.AvatarMinKB {
		kb += int(h % uint64(s.AvatarMaxKB-s.AvatarMinKB+1))
	}
	size := kb * 1024
	w.Header().Set("Content-Type", "image/jpeg")
	w.Header().Set("Content-Length", strconv.Itoa(size))
	w.Header().Set("Cache-Control", "max-age=86400")
	blob := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(h)))
	rng.Read(blob)
	// JPEG SOI marker for verisimilitude.
	if size >= 2 {
		blob[0], blob[1] = 0xFF, 0xD8
	}
	w.Write(blob)
}
