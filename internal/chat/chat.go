// Package chat implements the Periscope chat plane: WebSocket rooms
// attached to broadcasts (§3), JSON-encoded chat messages that arrive even
// when the chat UI is off, a join cap after which "new joining users
// cannot send messages" (chat full), and an Amazon-S3-like avatar server.
//
// The QoE study found the chat feature dominates traffic and power when
// enabled: the app downloads chatting users' profile pictures next to
// their messages, does not cache them, and in one experiment the aggregate
// data rate rose from ~500 kbps to 3.5 Mbps (§5.1, §5.3). The client here
// reproduces exactly that behaviour: avatars are fetched per message
// displayed, with no cache.
package chat

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"periscope/internal/websocket"
)

// Message is one chat message as carried on the WebSocket.
type Message struct {
	User      string `json:"user"`
	Text      string `json:"text"`
	AvatarURL string `json:"avatar_url,omitempty"`
	SentUnix  int64  `json:"sent"`
}

// DefaultJoinCap is the number of joined users after which the chat
// becomes full.
const DefaultJoinCap = 100

// RoomConfig tunes a simulated chat room.
type RoomConfig struct {
	// Chatters is the number of simulated active chatting users.
	Chatters int
	// MsgPerChatterSec is each chatter's message rate.
	MsgPerChatterSec float64
	// AvatarFrac is the fraction of chatters with a profile picture.
	AvatarFrac float64
	// JoinCap caps senders (chat full).
	JoinCap int
	Seed    int64
}

// RoomConfigForViewers derives chat activity from a broadcast's audience:
// a fixed fraction of viewers chat, capped by the join cap.
func RoomConfigForViewers(viewers int, seed int64) RoomConfig {
	chatters := viewers / 4
	if chatters > DefaultJoinCap {
		chatters = DefaultJoinCap
	}
	return RoomConfig{
		Chatters:         chatters,
		MsgPerChatterSec: 0.05, // one message per chatter every 20 s
		AvatarFrac:       0.7,
		JoinCap:          DefaultJoinCap,
		Seed:             seed,
	}
}

// Room is one broadcast's chat room. Simulated chatters generate traffic;
// real clients join over WebSocket and receive every message.
type Room struct {
	ID  string
	cfg RoomConfig

	mu      sync.Mutex
	conns   map[*websocket.Conn]bool
	joined  int
	stopped bool
	stopCh  chan struct{}
}

// NewRoom creates a room and starts its simulated chatter loop if the
// config has any chatters.
func NewRoom(id string, cfg RoomConfig) *Room {
	r := &Room{ID: id, cfg: cfg, conns: map[*websocket.Conn]bool{}, stopCh: make(chan struct{})}
	if cfg.Chatters > 0 && cfg.MsgPerChatterSec > 0 {
		go r.generate()
	}
	return r
}

// generate emits simulated chat messages at the aggregate room rate.
func (r *Room) generate() {
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	rate := float64(r.cfg.Chatters) * r.cfg.MsgPerChatterSec
	if rate <= 0 {
		return
	}
	for {
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if wait > 5*time.Second {
			wait = 5 * time.Second
		}
		select {
		case <-r.stopCh:
			return
		case <-time.After(wait):
		}
		user := fmt.Sprintf("user%04d", rng.Intn(r.cfg.Chatters))
		m := Message{
			User:     user,
			Text:     syntheticText(rng),
			SentUnix: time.Now().UnixNano(),
		}
		if rng.Float64() < r.cfg.AvatarFrac {
			m.AvatarURL = "/avatars/" + user + ".jpg"
		}
		r.Broadcast(m)
	}
}

var chatPhrases = []string{
	"hello from finland!", "where is this?", "nice view", "omg", "hi hi hi",
	"what's happening?", "greetings", "love this", "turn around please",
	"how's the weather", "first time here", "this is great",
}

func syntheticText(rng *rand.Rand) string {
	return chatPhrases[rng.Intn(len(chatPhrases))]
}

// Broadcast sends a message to every connected client.
func (r *Room) Broadcast(m Message) {
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	r.mu.Lock()
	conns := make([]*websocket.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, c := range conns {
		if err := c.WriteMessage(websocket.OpText, data); err != nil {
			r.mu.Lock()
			delete(r.conns, c)
			r.mu.Unlock()
		}
	}
}

// Join attaches a WebSocket connection to the room. The returned canSend
// flag is false once the room is full — late joiners only listen.
func (r *Room) Join(c *websocket.Conn) (canSend bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conns[c] = true
	r.joined++
	cap := r.cfg.JoinCap
	if cap == 0 {
		cap = DefaultJoinCap
	}
	return r.joined <= cap
}

// Leave detaches a connection.
func (r *Room) Leave(c *websocket.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.conns, c)
}

// Members reports the current number of attached clients.
func (r *Room) Members() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.conns)
}

// Close stops the chatter loop and drops members.
func (r *Room) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.stopped {
		r.stopped = true
		close(r.stopCh)
	}
	r.conns = map[*websocket.Conn]bool{}
}

// Server hosts chat rooms at /chat/{broadcastID} and profile pictures at
// /avatars/{user}.jpg.
type Server struct {
	mu    sync.Mutex
	rooms map[string]*Room
	// AvatarMinKB/AvatarMaxKB bound the synthetic profile-picture sizes;
	// "the precise effect on traffic depends on … the format and
	// resolution of profile pictures" (§5.1).
	AvatarMinKB int
	AvatarMaxKB int
}

// NewServer creates an empty chat server.
func NewServer() *Server {
	return &Server{rooms: map[string]*Room{}, AvatarMinKB: 15, AvatarMaxKB: 80}
}

// Room returns (creating if needed) the room for a broadcast.
func (s *Server) Room(id string, cfg RoomConfig) *Room {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rooms[id]; ok {
		return r
	}
	r := NewRoom(id, cfg)
	s.rooms[id] = r
	return r
}

// CloseRoom shuts a room down (broadcast ended).
func (s *Server) CloseRoom(id string) {
	s.mu.Lock()
	r := s.rooms[id]
	delete(s.rooms, id)
	s.mu.Unlock()
	if r != nil {
		r.Close()
	}
}

// ServeHTTP routes chat joins and avatar downloads.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/chat/"):
		id := strings.TrimPrefix(r.URL.Path, "/chat/")
		s.mu.Lock()
		room := s.rooms[id]
		s.mu.Unlock()
		if room == nil {
			http.NotFound(w, r)
			return
		}
		conn, err := websocket.Upgrade(w, r)
		if err != nil {
			return
		}
		canSend := room.Join(conn)
		go s.serveMember(room, conn, canSend)
	case strings.HasPrefix(r.URL.Path, "/avatars/"):
		s.serveAvatar(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveMember relays inbound messages from a member (if allowed) until the
// connection drops.
func (s *Server) serveMember(room *Room, conn *websocket.Conn, canSend bool) {
	defer func() {
		room.Leave(conn)
		conn.Close()
	}()
	for {
		_, data, err := conn.ReadMessage()
		if err != nil {
			return
		}
		if !canSend {
			continue // chat full: messages from late joiners are dropped
		}
		var m Message
		if json.Unmarshal(data, &m) == nil {
			room.Broadcast(m)
		}
	}
}

// serveAvatar returns a deterministic pseudo-JPEG blob for a user. The
// response is cacheable, but the app never caches it (§5.1: "some pictures
// were downloaded multiple times, which indicates that the app does not
// cache them").
func (s *Server) serveAvatar(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/avatars/")
	name = strings.TrimSuffix(name, ".jpg")
	if name == "" {
		http.NotFound(w, r)
		return
	}
	// Deterministic size in [min, max] KB from the user name.
	h := uint64(14695981039346656037)
	for _, c := range name {
		h = (h ^ uint64(c)) * 1099511628211
	}
	kb := s.AvatarMinKB
	if s.AvatarMaxKB > s.AvatarMinKB {
		kb += int(h % uint64(s.AvatarMaxKB-s.AvatarMinKB+1))
	}
	size := kb * 1024
	w.Header().Set("Content-Type", "image/jpeg")
	w.Header().Set("Content-Length", strconv.Itoa(size))
	w.Header().Set("Cache-Control", "max-age=86400")
	blob := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(h)))
	rng.Read(blob)
	// JPEG SOI marker for verisimilitude.
	if size >= 2 {
		blob[0], blob[1] = 0xFF, 0xD8
	}
	w.Write(blob)
}
